//! Binder: resolve a parsed [`AstStatement`] against the catalog and attach
//! selectivities, producing a bound [`Statement`].

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::query::{
    DeleteStmt, InsertStmt, JoinPredicate, Predicate, PredicateKind, SelectStmt, Statement,
    StatementKind, UpdateStmt,
};
use crate::selectivity;
use crate::sql::ast::*;
use crate::types::{ColumnId, TableId};
use std::collections::HashMap;

/// Resolves names in an AST against a [`Catalog`].
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// Create a binder over the given catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog }
    }

    /// Bind a parsed statement.
    pub fn bind(&self, ast: &AstStatement) -> Result<Statement> {
        let kind = match ast {
            AstStatement::Select(s) => StatementKind::Select(self.bind_select(s)?),
            AstStatement::Update(u) => StatementKind::Update(self.bind_update(u)?),
            AstStatement::Insert(i) => StatementKind::Insert(self.bind_insert(i)?),
            AstStatement::Delete(d) => StatementKind::Delete(self.bind_delete(d)?),
        };
        Ok(Statement::new(kind))
    }

    fn bind_select(&self, ast: &SelectAst) -> Result<SelectStmt> {
        let scope = self.bind_tables(&ast.tables)?;
        let table_ids: Vec<TableId> = scope.tables.clone();

        let mut stmt = SelectStmt {
            tables: table_ids,
            predicates: Vec::new(),
            joins: Vec::new(),
            referenced_columns: Vec::new(),
            order_by: Vec::new(),
            group_by: Vec::new(),
        };

        for item in &ast.projection {
            match item {
                SelectItem::Star => {
                    // `*` references every column of every table.  For covering
                    // purposes we record all of them.
                    for t in &stmt.tables {
                        for c in &self.catalog.table(*t).columns {
                            push_unique(&mut stmt.referenced_columns, *c);
                        }
                    }
                }
                SelectItem::CountStar => {}
                SelectItem::Column(name) | SelectItem::Aggregate { column: name, .. } => {
                    let col = scope.resolve_column(self.catalog, name)?;
                    push_unique(&mut stmt.referenced_columns, col);
                }
            }
        }

        for cond in &ast.conditions {
            self.bind_condition(&scope, cond, &mut stmt.predicates, &mut stmt.joins)?;
        }
        for p in &stmt.predicates {
            push_unique(&mut stmt.referenced_columns, p.column);
        }
        for j in &stmt.joins {
            push_unique(&mut stmt.referenced_columns, j.left_column);
            push_unique(&mut stmt.referenced_columns, j.right_column);
        }

        for name in &ast.group_by {
            let col = scope.resolve_column(self.catalog, name)?;
            stmt.group_by.push(col);
            push_unique(&mut stmt.referenced_columns, col);
        }
        for name in &ast.order_by {
            let col = scope.resolve_column(self.catalog, name)?;
            stmt.order_by.push(col);
            push_unique(&mut stmt.referenced_columns, col);
        }
        Ok(stmt)
    }

    fn bind_update(&self, ast: &UpdateAst) -> Result<UpdateStmt> {
        let table = self.catalog.table_by_name(&ast.table.name)?;
        let scope = Scope::single(table, ast.table.alias.clone(), &ast.table.name);
        let mut set_columns = Vec::new();
        for name in &ast.set_columns {
            set_columns.push(scope.resolve_column(self.catalog, name)?);
        }
        let mut predicates = Vec::new();
        let mut joins = Vec::new();
        for cond in &ast.conditions {
            self.bind_condition(&scope, cond, &mut predicates, &mut joins)?;
        }
        if !joins.is_empty() {
            return Err(Error::Unsupported(
                "join predicates are not allowed in UPDATE".into(),
            ));
        }
        let referenced_columns = predicates.iter().map(|p| p.column).collect();
        Ok(UpdateStmt {
            table,
            set_columns,
            predicates,
            referenced_columns,
        })
    }

    fn bind_insert(&self, ast: &InsertAst) -> Result<InsertStmt> {
        let table = self.catalog.table_by_name(&ast.table.name)?;
        Ok(InsertStmt {
            table,
            row_count: ast.row_count.max(1) as f64,
        })
    }

    fn bind_delete(&self, ast: &DeleteAst) -> Result<DeleteStmt> {
        let table = self.catalog.table_by_name(&ast.table.name)?;
        let scope = Scope::single(table, ast.table.alias.clone(), &ast.table.name);
        let mut predicates = Vec::new();
        let mut joins = Vec::new();
        for cond in &ast.conditions {
            self.bind_condition(&scope, cond, &mut predicates, &mut joins)?;
        }
        if !joins.is_empty() {
            return Err(Error::Unsupported(
                "join predicates are not allowed in DELETE".into(),
            ));
        }
        let referenced_columns = predicates.iter().map(|p| p.column).collect();
        Ok(DeleteStmt {
            table,
            predicates,
            referenced_columns,
        })
    }

    fn bind_tables(&self, refs: &[TableRef]) -> Result<Scope> {
        let mut scope = Scope::default();
        for r in refs {
            let id = self.catalog.table_by_name(&r.name)?;
            scope.tables.push(id);
            if let Some(alias) = &r.alias {
                scope.aliases.insert(alias.to_ascii_lowercase(), id);
            }
            // The bare (schema-less) table name also works as an alias.
            if let Some(short) = r.name.rsplit('.').next() {
                scope
                    .aliases
                    .entry(short.to_ascii_lowercase())
                    .or_insert(id);
            }
        }
        Ok(scope)
    }

    fn bind_condition(
        &self,
        scope: &Scope,
        cond: &Condition,
        predicates: &mut Vec<Predicate>,
        joins: &mut Vec<JoinPredicate>,
    ) -> Result<()> {
        match cond {
            Condition::Compare { column, op, value } => {
                let col = scope.resolve_column(self.catalog, column)?;
                let meta = self.catalog.column(col);
                let (kind, sel) = match op {
                    CompareOp::Eq => (PredicateKind::Equality, selectivity::equality(meta)),
                    CompareOp::Ne => (PredicateKind::NotEqual, selectivity::not_equal(meta)),
                    _ => (
                        PredicateKind::Range,
                        selectivity::comparison(meta, *op, value),
                    ),
                };
                predicates.push(Predicate {
                    table: meta.table,
                    column: col,
                    kind,
                    selectivity: sel,
                });
            }
            Condition::Between { column, low, high } => {
                let col = scope.resolve_column(self.catalog, column)?;
                let meta = self.catalog.column(col);
                predicates.push(Predicate {
                    table: meta.table,
                    column: col,
                    kind: PredicateKind::Range,
                    selectivity: selectivity::between(meta, low, high),
                });
            }
            Condition::Like { column, pattern } => {
                let col = scope.resolve_column(self.catalog, column)?;
                let meta = self.catalog.column(col);
                predicates.push(Predicate {
                    table: meta.table,
                    column: col,
                    kind: PredicateKind::Like,
                    selectivity: selectivity::like(meta, pattern),
                });
            }
            Condition::InList { column, values } => {
                let col = scope.resolve_column(self.catalog, column)?;
                let meta = self.catalog.column(col);
                predicates.push(Predicate {
                    table: meta.table,
                    column: col,
                    kind: PredicateKind::Equality,
                    selectivity: selectivity::in_list(meta, values.len()),
                });
            }
            Condition::ColumnEq { left, right } => {
                let lcol = scope.resolve_column(self.catalog, left)?;
                let rcol = scope.resolve_column(self.catalog, right)?;
                let lmeta = self.catalog.column(lcol);
                let rmeta = self.catalog.column(rcol);
                if lmeta.table == rmeta.table {
                    // Same-table column equality: treat as a restriction with
                    // a default selectivity.
                    predicates.push(Predicate {
                        table: lmeta.table,
                        column: lcol,
                        kind: PredicateKind::Range,
                        selectivity: selectivity::DEFAULT_RANGE_SELECTIVITY,
                    });
                } else {
                    joins.push(JoinPredicate {
                        left_table: lmeta.table,
                        left_column: lcol,
                        right_table: rmeta.table,
                        right_column: rcol,
                    });
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Scope {
    tables: Vec<TableId>,
    aliases: HashMap<String, TableId>,
}

impl Scope {
    fn single(table: TableId, alias: Option<String>, name: &str) -> Self {
        let mut aliases = HashMap::new();
        if let Some(a) = alias {
            aliases.insert(a.to_ascii_lowercase(), table);
        }
        if let Some(short) = name.rsplit('.').next() {
            aliases.insert(short.to_ascii_lowercase(), table);
        }
        Self {
            tables: vec![table],
            aliases,
        }
    }

    /// Resolve a possibly alias-qualified column name.
    fn resolve_column(&self, catalog: &Catalog, name: &str) -> Result<ColumnId> {
        if let Some((qualifier, column)) = name.split_once('.') {
            if let Some(table) = self.aliases.get(&qualifier.to_ascii_lowercase()) {
                return catalog.column_by_name(column, &[*table]);
            }
            // Not an alias: maybe `schema.table.column` or `table.column`.
            return catalog.column_by_name(name, &self.tables);
        }
        catalog.column_by_name(name, &self.tables)
    }
}

fn push_unique(v: &mut Vec<ColumnId>, c: ColumnId) {
    if !v.contains(&c) {
        v.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;
    use crate::sql::parser::parse;
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.table("tpce.security")
            .rows(500_000.0)
            .column("s_symb", DataType::Integer, 500_000.0)
            .column("s_co_id", DataType::Integer, 100_000.0)
            .column_with_range("s_pe", DataType::Decimal, 50_000.0, 0.0, 200.0)
            .column_with_range(
                "s_exch_date",
                DataType::Date,
                100_000.0,
                crate::types::string_to_numeric("1990-01-01"),
                crate::types::string_to_numeric("2010-01-01"),
            )
            .finish();
        b.table("tpce.company")
            .rows(100_000.0)
            .column("co_id", DataType::Integer, 100_000.0)
            .column_with_range(
                "co_open_date",
                DataType::Date,
                50_000.0,
                crate::types::string_to_numeric("1800-01-01"),
                crate::types::string_to_numeric("2000-01-01"),
            )
            .finish();
        b.table("tpce.daily_market")
            .rows(4_000_000.0)
            .column("dm_s_symb", DataType::Integer, 500_000.0)
            .column_with_range("dm_close", DataType::Decimal, 100_000.0, 0.0, 1000.0)
            .finish();
        b.table("tpch.lineitem")
            .rows(6_000_000.0)
            .column("l_orderkey", DataType::Integer, 1_500_000.0)
            .column_with_range(
                "l_extendedprice",
                DataType::Decimal,
                900_000.0,
                900.0,
                105_000.0,
            )
            .column("l_tax", DataType::Decimal, 9.0)
            .finish();
        b.build()
    }

    fn bind(sql: &str) -> Statement {
        let c = catalog();
        let ast = parse(sql).unwrap();
        Binder::new(&c).bind(&ast).unwrap()
    }

    #[test]
    fn binds_paper_select() {
        let stmt = bind(
            "SELECT count(*) \
             FROM tpce.security table1, tpce.company table2, tpce.daily_market table0 \
             WHERE table1.s_pe BETWEEN 63.278 AND 86.091 \
             AND table1.s_exch_date BETWEEN '1995-05-12' AND '2006-07-10' \
             AND table2.co_open_date BETWEEN '1812-08-05' AND '1812-12-12' \
             AND table1.s_symb = table0.dm_s_symb \
             AND table2.co_id = table1.s_co_id",
        );
        let StatementKind::Select(sel) = &stmt.kind else {
            panic!()
        };
        assert_eq!(sel.tables.len(), 3);
        assert_eq!(sel.predicates.len(), 3);
        assert_eq!(sel.joins.len(), 2);
        for p in &sel.predicates {
            assert!(p.selectivity > 0.0 && p.selectivity <= 1.0);
        }
    }

    #[test]
    fn binds_paper_update() {
        let stmt = bind(
            "UPDATE tpch.lineitem \
             SET l_tax = l_tax + RANDOM_SIGN()*0.000001 \
             WHERE l_extendedprice BETWEEN 65522.378 AND 66256.943",
        );
        let StatementKind::Update(upd) = &stmt.kind else {
            panic!()
        };
        assert_eq!(upd.set_columns.len(), 1);
        assert_eq!(upd.predicates.len(), 1);
        assert!(upd.predicates[0].selectivity < 0.05);
        assert!(stmt.is_update());
    }

    #[test]
    fn alias_resolution_prefers_alias_over_table() {
        let stmt = bind("SELECT s_pe FROM tpce.security sec WHERE sec.s_pe > 100");
        let StatementKind::Select(sel) = &stmt.kind else {
            panic!()
        };
        assert_eq!(sel.predicates.len(), 1);
    }

    #[test]
    fn unknown_column_fails() {
        let c = catalog();
        let ast = parse("SELECT nope FROM tpce.security").unwrap();
        assert!(Binder::new(&c).bind(&ast).is_err());
    }

    #[test]
    fn unknown_table_fails() {
        let c = catalog();
        let ast = parse("SELECT * FROM missing_table").unwrap();
        assert!(matches!(
            Binder::new(&c).bind(&ast),
            Err(Error::UnknownTable(_))
        ));
    }

    #[test]
    fn star_projection_references_all_columns() {
        let stmt = bind("SELECT * FROM tpce.company WHERE co_id = 7");
        let StatementKind::Select(sel) = &stmt.kind else {
            panic!()
        };
        assert_eq!(sel.referenced_columns.len(), 2);
    }

    #[test]
    fn order_and_group_by_are_bound() {
        let stmt = bind(
            "SELECT s_co_id FROM tpce.security WHERE s_pe > 10 GROUP BY s_co_id ORDER BY s_co_id",
        );
        let StatementKind::Select(sel) = &stmt.kind else {
            panic!()
        };
        assert_eq!(sel.group_by.len(), 1);
        assert_eq!(sel.order_by.len(), 1);
    }

    #[test]
    fn delete_and_insert_bind() {
        let del = bind("DELETE FROM tpce.company WHERE co_id = 9");
        assert!(del.is_update());
        let ins = bind("INSERT INTO tpce.company (co_id) VALUES (1), (2)");
        let StatementKind::Insert(i) = &ins.kind else {
            panic!()
        };
        assert_eq!(i.row_count, 2.0);
    }

    #[test]
    fn same_table_column_equality_is_a_restriction() {
        let stmt = bind("SELECT count(*) FROM tpce.security WHERE s_symb = s_co_id");
        let StatementKind::Select(sel) = &stmt.kind else {
            panic!()
        };
        assert!(sel.joins.is_empty());
        assert_eq!(sel.predicates.len(), 1);
    }
}
