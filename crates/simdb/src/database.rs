//! The [`Database`] façade: the one-stop interface the tuning algorithms use.
//!
//! A `Database` bundles a catalog, an index registry, the cost model and a
//! what-if cache, and exposes exactly the services the paper requires from the
//! DBMS: what-if optimization, candidate extraction and transition costs.

use parking_lot::RwLock;

use crate::catalog::Catalog;
use crate::cost::CostModelConfig;
use crate::error::Result;
use crate::extract::extract_indices;
use crate::index::{IndexDef, IndexId, IndexRegistry, IndexSet, TransitionCostModel};
use crate::optimizer::{Optimizer, PlanCost};
use crate::query::Statement;
use crate::sql::{parse, Binder};
use crate::types::{ColumnId, TableId};
use crate::whatif::{WhatIfCache, WhatIfStats};

/// A simulated database instance.
pub struct Database {
    catalog: Catalog,
    registry: RwLock<IndexRegistry>,
    cost_config: CostModelConfig,
    transition_model: TransitionCostModel,
    cache: WhatIfCache,
}

impl Database {
    /// Create a database over the given catalog with default cost models.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_configs(
            catalog,
            CostModelConfig::default(),
            TransitionCostModel::default(),
        )
    }

    /// Create a database with explicit cost-model configurations.
    pub fn with_configs(
        catalog: Catalog,
        cost_config: CostModelConfig,
        transition_model: TransitionCostModel,
    ) -> Self {
        Self {
            catalog,
            registry: RwLock::new(IndexRegistry::new()),
            cost_config,
            transition_model,
            cache: WhatIfCache::new(),
        }
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cost model configuration.
    pub fn cost_config(&self) -> &CostModelConfig {
        &self.cost_config
    }

    /// Parse and bind a SQL statement.
    pub fn parse(&self, sql: &str) -> Result<Statement> {
        let ast = parse(sql)?;
        let mut stmt = Binder::new(&self.catalog).bind(&ast)?;
        stmt.sql = Some(sql.to_string());
        Ok(stmt)
    }

    /// Define (intern) an index by table and column names.
    pub fn define_index(&self, table: &str, columns: &[&str]) -> Result<IndexId> {
        let table_id = self.catalog.table_by_name(table)?;
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(self.catalog.column_by_name(c, &[table_id])?);
        }
        Ok(self.registry.write().intern(table_id, cols))
    }

    /// Define (intern) an index by ids.
    pub fn define_index_on(&self, table: TableId, columns: Vec<ColumnId>) -> IndexId {
        self.registry.write().intern(table, columns)
    }

    /// A snapshot of the definition of an index.
    pub fn index_def(&self, id: IndexId) -> IndexDef {
        self.registry.read().def(id).clone()
    }

    /// Human-readable name of an index.
    pub fn index_name(&self, id: IndexId) -> String {
        self.registry.read().def(id).display_name(&self.catalog)
    }

    /// All indices currently registered (candidates and materialized alike).
    pub fn all_indexes(&self) -> Vec<IndexId> {
        self.registry.read().iter().map(|d| d.id).collect()
    }

    /// What-if optimization: cost of `stmt` under hypothetical configuration
    /// `config`.  Results are cached per `(statement, configuration)`.
    pub fn whatif_cost(&self, stmt: &Statement, config: &IndexSet) -> PlanCost {
        self.cache.get_or_compute(stmt.fingerprint, config, || {
            let registry = self.registry.read();
            let optimizer = Optimizer::new(&self.catalog, &registry, &self.cost_config);
            optimizer.cost(stmt, config)
        })
    }

    /// What-if optimization bypassing the database's own cache.
    ///
    /// This is the entry point for callers that bring their *own* memoization
    /// layer (e.g. a per-tenant [`crate::cache::SharedWhatIfCache`] shared by
    /// several tuning sessions) and do not want every result stored twice.
    pub fn whatif_cost_uncached(&self, stmt: &Statement, config: &IndexSet) -> PlanCost {
        let registry = self.registry.read();
        let optimizer = Optimizer::new(&self.catalog, &registry, &self.cost_config);
        optimizer.cost(stmt, config)
    }

    /// Convenience: just the scalar cost.
    pub fn cost(&self, stmt: &Statement, config: &IndexSet) -> f64 {
        self.whatif_cost(stmt, config).total
    }

    /// Candidate extraction (`extractIndices(q)` in the paper).
    pub fn extract_candidates(&self, stmt: &Statement) -> Vec<IndexId> {
        let mut registry = self.registry.write();
        extract_indices(stmt, &self.catalog, &mut registry)
    }

    /// Cost `δ⁺(a)` of creating index `a`.
    pub fn create_cost(&self, id: IndexId) -> f64 {
        let registry = self.registry.read();
        self.transition_model
            .create_cost(&self.catalog, registry.def(id))
    }

    /// Cost `δ⁻(a)` of dropping index `a`.
    pub fn drop_cost(&self, id: IndexId) -> f64 {
        let registry = self.registry.read();
        self.transition_model
            .drop_cost(&self.catalog, registry.def(id))
    }

    /// Transition cost `δ(from, to)`.
    pub fn transition_cost(&self, from: &IndexSet, to: &IndexSet) -> f64 {
        let registry = self.registry.read();
        self.transition_model
            .transition_cost(&self.catalog, &registry, from, to)
    }

    /// What-if usage counters.
    pub fn whatif_stats(&self) -> WhatIfStats {
        self.cache.stats()
    }

    /// Reset what-if usage counters.
    pub fn reset_whatif_stats(&self) {
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;
    use crate::types::DataType;

    fn db() -> Database {
        let mut b = CatalogBuilder::new();
        b.table("tpch.lineitem")
            .rows(6_000_000.0)
            .column("l_orderkey", DataType::Integer, 1_500_000.0)
            .column_with_range(
                "l_extendedprice",
                DataType::Decimal,
                900_000.0,
                900.0,
                105_000.0,
            )
            .column("l_tax", DataType::Decimal, 9.0)
            .finish();
        b.table("tpch.orders")
            .rows(1_500_000.0)
            .column("o_orderkey", DataType::Integer, 1_500_000.0)
            .column("o_custkey", DataType::Integer, 100_000.0)
            .finish();
        Database::new(b.build())
    }

    #[test]
    fn end_to_end_parse_and_cost() {
        let db = db();
        let stmt = db
            .parse(
                "SELECT count(*) FROM tpch.lineitem, tpch.orders \
                 WHERE l_orderkey = o_orderkey AND l_extendedprice BETWEEN 1000 AND 1500",
            )
            .unwrap();
        let idx = db
            .define_index("tpch.lineitem", &["l_extendedprice"])
            .unwrap();
        let base = db.cost(&stmt, &IndexSet::empty());
        let with = db.cost(&stmt, &IndexSet::single(idx));
        assert!(with < base);
    }

    #[test]
    fn whatif_cache_counts_calls() {
        let db = db();
        let stmt = db
            .parse("SELECT count(*) FROM tpch.orders WHERE o_custkey = 42")
            .unwrap();
        let e = IndexSet::empty();
        db.cost(&stmt, &e);
        db.cost(&stmt, &e);
        db.cost(&stmt, &e);
        let stats = db.whatif_stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.optimizer_calls, 1);
        assert_eq!(stats.cache_hits, 2);
        db.reset_whatif_stats();
        assert_eq!(db.whatif_stats().requests, 0);
    }

    #[test]
    fn candidate_extraction_registers_indexes() {
        let db = db();
        let stmt = db
            .parse("SELECT l_tax FROM tpch.lineitem WHERE l_extendedprice BETWEEN 100 AND 200")
            .unwrap();
        let cands = db.extract_candidates(&stmt);
        assert!(!cands.is_empty());
        assert_eq!(db.all_indexes().len(), cands.len());
        for c in &cands {
            assert!(db.index_name(*c).contains("lineitem"));
        }
    }

    #[test]
    fn transition_costs_exposed() {
        let db = db();
        let idx = db.define_index("tpch.orders", &["o_custkey"]).unwrap();
        assert!(db.create_cost(idx) > db.drop_cost(idx));
        let d = db.transition_cost(&IndexSet::empty(), &IndexSet::single(idx));
        assert!((d - db.create_cost(idx)).abs() < 1e-9);
    }

    #[test]
    fn define_index_rejects_unknown_names() {
        let db = db();
        assert!(db.define_index("nope", &["o_custkey"]).is_err());
        assert!(db.define_index("tpch.orders", &["nope"]).is_err());
    }

    #[test]
    fn update_statement_costs_account_for_maintenance() {
        let db = db();
        let stmt = db
            .parse(
                "UPDATE tpch.lineitem SET l_tax = l_tax + 0.01 \
                 WHERE l_extendedprice BETWEEN 65522.378 AND 66256.943",
            )
            .unwrap();
        let idx_tax = db.define_index("tpch.lineitem", &["l_tax"]).unwrap();
        let base = db.cost(&stmt, &IndexSet::empty());
        let with = db.cost(&stmt, &IndexSet::single(idx_tax));
        assert!(with > base, "index on modified column must add maintenance");
    }
}
