//! Error handling for the simulator.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing, binding or planning statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The SQL tokenizer met an unexpected character.
    Lex {
        /// Byte offset in the input.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// The SQL parser met an unexpected token.
    Parse {
        /// Byte offset in the input.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// A table referenced in a statement does not exist in the catalog.
    UnknownTable(String),
    /// A column referenced in a statement does not exist (or is ambiguous).
    UnknownColumn(String),
    /// An index definition referenced an unknown table or column.
    InvalidIndex(String),
    /// A statement uses a feature outside the supported SQL subset.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { position, message } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            Error::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            Error::UnknownTable(name) => write!(f, "unknown table: {name}"),
            Error::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            Error::InvalidIndex(msg) => write!(f, "invalid index definition: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported SQL feature: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownTable("tpch.nation".into());
        assert!(e.to_string().contains("tpch.nation"));
        let e = Error::Parse {
            position: 12,
            message: "expected FROM".into(),
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("FROM"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::UnknownColumn("x".into()),
            Error::UnknownColumn("x".into())
        );
        assert_ne!(
            Error::UnknownColumn("x".into()),
            Error::UnknownTable("x".into())
        );
    }
}
