//! Schema catalog: tables, columns and the statistics driving the cost model.
//!
//! The simulator never materializes base data.  Everything the optimizer needs
//! is captured by per-table and per-column statistics: row counts, row widths,
//! column cardinalities (number of distinct values) and numeric min/max bounds
//! used for range-selectivity interpolation.

use crate::error::{Error, Result};
use crate::types::{ColumnId, DataType, TableId, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics and metadata for a single column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Global identifier of the column.
    pub id: ColumnId,
    /// Table the column belongs to.
    pub table: TableId,
    /// Column name (unqualified).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Estimated number of distinct values.
    pub distinct_values: f64,
    /// Minimum numeric value (used for range selectivity interpolation).
    pub min_value: f64,
    /// Maximum numeric value (used for range selectivity interpolation).
    pub max_value: f64,
    /// Average width of the column in bytes.
    pub width: f64,
}

impl ColumnMeta {
    /// Fully qualified name, `table.column`.
    pub fn qualified_name(&self, catalog: &Catalog) -> String {
        format!("{}.{}", catalog.table(self.table).name, self.name)
    }
}

/// Statistics and metadata for a single table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    /// Identifier of the table.
    pub id: TableId,
    /// Fully qualified name, e.g. `tpch.lineitem`.
    pub name: String,
    /// Columns of the table, in declaration order.
    pub columns: Vec<ColumnId>,
    /// Estimated number of rows.
    pub row_count: f64,
    /// Average row width in bytes (sum of column widths plus per-row overhead).
    pub row_width: f64,
}

impl TableMeta {
    /// Number of heap pages occupied by the table.
    pub fn pages(&self) -> f64 {
        ((self.row_count * self.row_width) / PAGE_SIZE).max(1.0)
    }
}

/// The schema catalog: a read-only collection of tables and columns with
/// statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    columns: Vec<ColumnMeta>,
    table_by_name: HashMap<String, TableId>,
    /// Maps `table.column` and bare `column` (when unambiguous) to ids.
    column_by_name: HashMap<String, Vec<ColumnId>>,
}

impl Catalog {
    /// Number of tables in the catalog.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Metadata for a table.
    ///
    /// # Panics
    /// Panics if the id is not in the catalog (ids are only minted by the
    /// builder, so this indicates a logic error).
    pub fn table(&self, id: TableId) -> &TableMeta {
        &self.tables[id.0 as usize]
    }

    /// Metadata for a column.
    pub fn column(&self, id: ColumnId) -> &ColumnMeta {
        &self.columns[id.0 as usize]
    }

    /// All tables in the catalog.
    pub fn tables(&self) -> impl Iterator<Item = &TableMeta> {
        self.tables.iter()
    }

    /// All columns in the catalog.
    pub fn columns(&self) -> impl Iterator<Item = &ColumnMeta> {
        self.columns.iter()
    }

    /// Resolve a table by (qualified) name.
    pub fn table_by_name(&self, name: &str) -> Result<TableId> {
        self.table_by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Resolve a column by name.
    ///
    /// `name` may be qualified (`table.column`) or bare.  A bare name is an
    /// error if it is ambiguous across the tables in `scope` (or across the
    /// whole catalog when `scope` is empty).
    pub fn column_by_name(&self, name: &str, scope: &[TableId]) -> Result<ColumnId> {
        let lower = name.to_ascii_lowercase();
        let candidates = self
            .column_by_name
            .get(&lower)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))?;
        let filtered: Vec<ColumnId> = if scope.is_empty() {
            candidates.clone()
        } else {
            candidates
                .iter()
                .copied()
                .filter(|c| scope.contains(&self.column(*c).table))
                .collect()
        };
        match filtered.len() {
            0 => Err(Error::UnknownColumn(name.to_string())),
            1 => Ok(filtered[0]),
            _ => Err(Error::UnknownColumn(format!("ambiguous column: {name}"))),
        }
    }

    /// Sum of widths of the given columns (used for index size estimation).
    pub fn columns_width(&self, cols: &[ColumnId]) -> f64 {
        cols.iter().map(|c| self.column(*c).width).sum()
    }
}

/// Builder used to declare schemas programmatically.
///
/// ```
/// use simdb::catalog::CatalogBuilder;
/// use simdb::types::DataType;
///
/// let mut b = CatalogBuilder::new();
/// b.table("tpch.orders")
///     .rows(1_500_000.0)
///     .column("o_orderkey", DataType::Integer, 1_500_000.0)
///     .column("o_custkey", DataType::Integer, 100_000.0)
///     .column_with_range("o_totalprice", DataType::Decimal, 800_000.0, 850.0, 560_000.0)
///     .finish();
/// let catalog = b.build();
/// assert_eq!(catalog.table_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    catalog: Catalog,
}

impl CatalogBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start declaring a new table.  Finish the declaration with
    /// [`TableBuilder::finish`].
    pub fn table<'a>(&'a mut self, name: &str) -> TableBuilder<'a> {
        TableBuilder {
            builder: self,
            name: name.to_string(),
            row_count: 1000.0,
            columns: Vec::new(),
        }
    }

    /// Finalize the catalog.
    pub fn build(self) -> Catalog {
        self.catalog
    }

    fn add_table(&mut self, name: String, row_count: f64, cols: Vec<PendingColumn>) -> TableId {
        let table_id = TableId(self.catalog.tables.len() as u32);
        let mut column_ids = Vec::with_capacity(cols.len());
        let mut row_width = 8.0; // per-row header overhead
        for col in cols {
            let col_id = ColumnId(self.catalog.columns.len() as u32);
            let width = col.data_type.width();
            row_width += width;
            let meta = ColumnMeta {
                id: col_id,
                table: table_id,
                name: col.name.clone(),
                data_type: col.data_type,
                distinct_values: col.distinct_values.max(1.0),
                min_value: col.min_value,
                max_value: col.max_value,
                width,
            };
            // Register lookup names: bare and qualified.
            let bare = col.name.to_ascii_lowercase();
            let qualified = format!("{}.{}", name.to_ascii_lowercase(), bare);
            // Also register `last_component.column` (e.g. `lineitem.l_tax` when
            // the table name is `tpch.lineitem`).
            let short_table = name
                .rsplit('.')
                .next()
                .unwrap_or(&name)
                .to_ascii_lowercase();
            let short_qualified = format!("{short_table}.{bare}");
            for key in [bare, qualified, short_qualified] {
                self.catalog
                    .column_by_name
                    .entry(key)
                    .or_default()
                    .push(col_id);
            }
            self.catalog.columns.push(meta);
            column_ids.push(col_id);
        }
        let table = TableMeta {
            id: table_id,
            name: name.clone(),
            columns: column_ids,
            row_count: row_count.max(1.0),
            row_width,
        };
        self.catalog
            .table_by_name
            .insert(name.to_ascii_lowercase(), table_id);
        // Also register the unqualified suffix when the name is schema-qualified.
        if let Some(short) = name.rsplit('.').next() {
            self.catalog
                .table_by_name
                .entry(short.to_ascii_lowercase())
                .or_insert(table_id);
        }
        self.catalog.tables.push(table);
        table_id
    }
}

struct PendingColumn {
    name: String,
    data_type: DataType,
    distinct_values: f64,
    min_value: f64,
    max_value: f64,
}

/// Builder for a single table; created via [`CatalogBuilder::table`].
pub struct TableBuilder<'a> {
    builder: &'a mut CatalogBuilder,
    name: String,
    row_count: f64,
    columns: Vec<PendingColumn>,
}

impl<'a> TableBuilder<'a> {
    /// Set the estimated row count of the table.
    pub fn rows(mut self, rows: f64) -> Self {
        self.row_count = rows;
        self
    }

    /// Add a column with default numeric bounds `[0, distinct)`.
    pub fn column(self, name: &str, data_type: DataType, distinct: f64) -> Self {
        let max = distinct.max(1.0);
        self.column_with_range(name, data_type, distinct, 0.0, max)
    }

    /// Add a column with explicit numeric bounds used for range selectivity.
    pub fn column_with_range(
        mut self,
        name: &str,
        data_type: DataType,
        distinct: f64,
        min_value: f64,
        max_value: f64,
    ) -> Self {
        self.columns.push(PendingColumn {
            name: name.to_string(),
            data_type,
            distinct_values: distinct,
            min_value,
            max_value: max_value.max(min_value + 1.0),
        });
        self
    }

    /// Register the table with the catalog and return its id.
    pub fn finish(self) -> TableId {
        self.builder
            .add_table(self.name, self.row_count, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.table("tpch.lineitem")
            .rows(6_000_000.0)
            .column("l_orderkey", DataType::Integer, 1_500_000.0)
            .column("l_partkey", DataType::Integer, 200_000.0)
            .column_with_range(
                "l_extendedprice",
                DataType::Decimal,
                900_000.0,
                900.0,
                105_000.0,
            )
            .column("l_tax", DataType::Decimal, 9.0)
            .finish();
        b.table("tpch.orders")
            .rows(1_500_000.0)
            .column("o_orderkey", DataType::Integer, 1_500_000.0)
            .column("o_custkey", DataType::Integer, 100_000.0)
            .finish();
        b.build()
    }

    #[test]
    fn builder_registers_tables_and_columns() {
        let c = sample_catalog();
        assert_eq!(c.table_count(), 2);
        assert_eq!(c.column_count(), 6);
        let t = c.table_by_name("tpch.lineitem").unwrap();
        assert_eq!(c.table(t).columns.len(), 4);
        assert!(c.table(t).row_count > 5e6);
    }

    #[test]
    fn short_table_name_resolves() {
        let c = sample_catalog();
        let a = c.table_by_name("tpch.orders").unwrap();
        let b = c.table_by_name("orders").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_table_is_error() {
        let c = sample_catalog();
        assert!(matches!(
            c.table_by_name("tpch.nation"),
            Err(Error::UnknownTable(_))
        ));
    }

    #[test]
    fn column_lookup_qualified_and_bare() {
        let c = sample_catalog();
        let q = c.column_by_name("tpch.lineitem.l_tax", &[]).unwrap();
        let s = c.column_by_name("lineitem.l_tax", &[]).unwrap();
        let b = c.column_by_name("l_tax", &[]).unwrap();
        assert_eq!(q, s);
        assert_eq!(q, b);
    }

    #[test]
    fn ambiguous_or_missing_column_is_error() {
        let c = sample_catalog();
        assert!(c.column_by_name("does_not_exist", &[]).is_err());
    }

    #[test]
    fn column_scope_filters_tables() {
        let c = sample_catalog();
        let orders = c.table_by_name("orders").unwrap();
        // l_tax does not exist in orders
        assert!(c.column_by_name("l_tax", &[orders]).is_err());
    }

    #[test]
    fn table_pages_scale_with_rows() {
        let c = sample_catalog();
        let li = c.table(c.table_by_name("lineitem").unwrap());
        let ord = c.table(c.table_by_name("orders").unwrap());
        assert!(li.pages() > ord.pages());
        assert!(li.pages() >= 1.0);
    }

    #[test]
    fn row_width_includes_overhead() {
        let c = sample_catalog();
        let ord = c.table(c.table_by_name("orders").unwrap());
        assert!(ord.row_width > 16.0);
    }

    #[test]
    fn columns_width_sums() {
        let c = sample_catalog();
        let li = c.table(c.table_by_name("lineitem").unwrap());
        let w = c.columns_width(&li.columns);
        assert!(w >= 8.0 * 4.0);
    }

    #[test]
    fn distinct_values_floored_at_one() {
        let mut b = CatalogBuilder::new();
        b.table("x")
            .rows(10.0)
            .column("c", DataType::Integer, 0.0)
            .finish();
        let c = b.build();
        let col = c.column_by_name("c", &[]).unwrap();
        assert!(c.column(col).distinct_values >= 1.0);
    }
}
