//! # simdb — an analytical cost-model DBMS simulator with a what-if optimizer
//!
//! This crate is the substrate used by the WFIT reproduction of
//! *Semi-Automatic Index Tuning: Keeping DBAs in the Loop*
//! (Schnaitter & Polyzotis, VLDB 2012).  The paper runs on top of IBM DB2 and
//! only consumes two services from the DBMS:
//!
//! 1. a **what-if optimizer** — `cost(q, X)`, the estimated cost of evaluating
//!    statement `q` when the hypothetical set of indices `X` is materialized;
//! 2. an implementation of **`extractIndices(q)`** — candidate indices that are
//!    syntactically relevant to a statement.
//!
//! `simdb` provides both on top of a purely statistics-driven cost model: no
//! base data is ever materialized, which mirrors the paper's evaluation
//! methodology ("the total work metric is evaluated using the optimizer's cost
//! model").
//!
//! The crate contains:
//!
//! * [`catalog`] — tables, columns and their statistics;
//! * [`index`] — secondary index definitions, an interning registry,
//!   [`index::IndexSet`] configurations, and creation/drop (transition) costs;
//! * [`sql`] — a tokenizer, recursive-descent parser and binder for the SQL
//!   subset used by the benchmark workloads;
//! * [`query`] — bound logical statements (the optimizer's input);
//! * [`selectivity`] — predicate selectivity estimation;
//! * [`cost`] — the plan cost model (scans, index access, intersections,
//!   joins, sorts, update maintenance);
//! * [`optimizer`] — the what-if optimizer proper, returning both the plan
//!   cost and the set of indices the plan uses (needed by the index benefit
//!   graph);
//! * [`whatif`] — a caching, call-counting façade (the paper reports
//!   what-if call counts as an overhead metric);
//! * [`cache`] — a concurrent, interned what-if cost cache shared across all
//!   tuning sessions of a tenant (the scaling layer the multi-tenant service
//!   in `crates/service` builds on);
//! * [`extract`] — `extractIndices(q)`.
//!
//! ## Quick example
//!
//! ```
//! use simdb::catalog::CatalogBuilder;
//! use simdb::database::Database;
//! use simdb::index::IndexSet;
//!
//! let mut builder = CatalogBuilder::new();
//! builder
//!     .table("t")
//!     .rows(1_000_000.0)
//!     .column("a", simdb::types::DataType::Integer, 50_000.0)
//!     .column("b", simdb::types::DataType::Integer, 100.0)
//!     .finish();
//! let db = Database::new(builder.build());
//!
//! let stmt = db.parse("SELECT a FROM t WHERE a = 17").unwrap();
//! let idx = db.define_index("t", &["a"]).unwrap();
//!
//! let without = db.whatif_cost(&stmt, &IndexSet::empty());
//! let with = db.whatif_cost(&stmt, &IndexSet::single(idx));
//! assert!(with.total < without.total);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod catalog;
pub mod cost;
pub mod database;
pub mod error;
pub mod extract;
pub mod index;
pub mod optimizer;
pub mod query;
pub mod selectivity;
pub mod sql;
pub mod types;
pub mod whatif;

pub use cache::SharedWhatIfCache;
pub use catalog::{Catalog, CatalogBuilder};
pub use database::Database;
pub use error::{Error, Result};
pub use index::{IndexDef, IndexId, IndexSet};
pub use optimizer::PlanCost;
pub use query::Statement;
pub use types::{ColumnId, DataType, TableId};
