//! The what-if optimizer: `cost(q, X)` for an arbitrary hypothetical
//! configuration `X`, together with the set of indices the chosen plan uses.
//!
//! The "used" set is what the index benefit graph of Schnaitter et al. \[16\]
//! needs: for any configuration `Y`, `cost(q, Y) = cost(q, used(q, Y))`, i.e.
//! removing an unused index from the configuration does not change the plan
//! cost.  For data-modification statements the maintained indices are included
//! in the used set, because they, too, influence the statement's cost.

use crate::catalog::Catalog;
use crate::cost::join::cost_select;
use crate::cost::update::{cost_delete, cost_insert, cost_update};
use crate::cost::{CostContext, CostModelConfig};
use crate::index::{IndexRegistry, IndexSet};
use crate::query::{Statement, StatementKind};
use serde::{Deserialize, Serialize};

/// Result of a what-if optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCost {
    /// Estimated cost of the best plan under the given configuration.
    pub total: f64,
    /// Indices of the configuration that influence the plan cost (access
    /// indices and, for updates, maintained indices).
    pub used_indexes: IndexSet,
    /// Human readable plan sketch.
    pub description: String,
}

/// Stateless what-if optimizer over a catalog + index registry.
pub struct Optimizer<'a> {
    ctx: CostContext<'a>,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer.
    pub fn new(
        catalog: &'a Catalog,
        registry: &'a IndexRegistry,
        config: &'a CostModelConfig,
    ) -> Self {
        Self {
            ctx: CostContext::new(catalog, registry, config),
        }
    }

    /// Cost the statement under the hypothetical configuration `config`.
    pub fn cost(&self, stmt: &Statement, config: &IndexSet) -> PlanCost {
        match &stmt.kind {
            StatementKind::Select(s) => {
                let plan = cost_select(&self.ctx, s, config);
                PlanCost {
                    total: plan.cost,
                    used_indexes: IndexSet::from_iter(plan.used_indexes),
                    description: plan.description,
                }
            }
            StatementKind::Update(u) => {
                let plan = cost_update(&self.ctx, u, config);
                PlanCost {
                    total: plan.cost,
                    used_indexes: IndexSet::from_iter(plan.used_indexes),
                    description: plan.description,
                }
            }
            StatementKind::Delete(d) => {
                let plan = cost_delete(&self.ctx, d, config);
                PlanCost {
                    total: plan.cost,
                    used_indexes: IndexSet::from_iter(plan.used_indexes),
                    description: plan.description,
                }
            }
            StatementKind::Insert(i) => {
                let plan = cost_insert(&self.ctx, i, config);
                PlanCost {
                    total: plan.cost,
                    used_indexes: IndexSet::from_iter(plan.used_indexes),
                    description: plan.description,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;
    use crate::index::IndexId;
    use crate::query::{build, PredicateKind};
    use crate::types::DataType;

    struct Fixture {
        catalog: Catalog,
        registry: IndexRegistry,
        config: CostModelConfig,
        idx_a: IndexId,
        idx_b: IndexId,
        stmt: Statement,
        upd: Statement,
    }

    fn fixture() -> Fixture {
        let mut b = CatalogBuilder::new();
        b.table("t")
            .rows(2_000_000.0)
            .column("a", DataType::Integer, 500_000.0)
            .column("b", DataType::Integer, 200_000.0)
            .column("c", DataType::Integer, 50.0)
            .finish();
        let catalog = b.build();
        let t = catalog.table_by_name("t").unwrap();
        let a = catalog.column_by_name("a", &[]).unwrap();
        let bcol = catalog.column_by_name("b", &[]).unwrap();
        let c = catalog.column_by_name("c", &[]).unwrap();
        let mut registry = IndexRegistry::new();
        let idx_a = registry.intern(t, vec![a]);
        let idx_b = registry.intern(t, vec![bcol]);
        let stmt = build::select()
            .table(t)
            .predicate(t, a, PredicateKind::Range, 0.01)
            .predicate(t, bcol, PredicateKind::Range, 0.01)
            .output(c)
            .build();
        let upd = build::update(
            t,
            vec![a],
            vec![crate::query::Predicate {
                table: t,
                column: bcol,
                kind: PredicateKind::Range,
                selectivity: 1e-4,
            }],
        );
        Fixture {
            catalog,
            registry,
            config: CostModelConfig::default(),
            idx_a,
            idx_b,
            stmt,
            upd,
        }
    }

    #[test]
    fn used_indexes_determine_cost() {
        // The IBG property: cost(q, Y) == cost(q, used(q, Y)).
        let f = fixture();
        let opt = Optimizer::new(&f.catalog, &f.registry, &f.config);
        for config in [
            IndexSet::empty(),
            IndexSet::single(f.idx_a),
            IndexSet::single(f.idx_b),
            IndexSet::from_iter([f.idx_a, f.idx_b]),
        ] {
            for stmt in [&f.stmt, &f.upd] {
                let full = opt.cost(stmt, &config);
                let reduced = opt.cost(stmt, &full.used_indexes);
                assert!(
                    (full.total - reduced.total).abs() < 1e-6,
                    "cost must only depend on used indexes: {} vs {} ({})",
                    full.total,
                    reduced.total,
                    full.description
                );
                assert!(full.used_indexes.is_subset_of(&config));
            }
        }
    }

    #[test]
    fn select_cost_monotone_in_configuration() {
        let f = fixture();
        let opt = Optimizer::new(&f.catalog, &f.registry, &f.config);
        let empty = opt.cost(&f.stmt, &IndexSet::empty()).total;
        let a = opt.cost(&f.stmt, &IndexSet::single(f.idx_a)).total;
        let ab = opt
            .cost(&f.stmt, &IndexSet::from_iter([f.idx_a, f.idx_b]))
            .total;
        assert!(a <= empty + 1e-9);
        assert!(ab <= a + 1e-9);
    }

    #[test]
    fn update_cost_can_increase_with_indexes() {
        let f = fixture();
        let opt = Optimizer::new(&f.catalog, &f.registry, &f.config);
        // idx_a is on the modified column a → pure maintenance overhead.
        let without = opt.cost(&f.upd, &IndexSet::empty()).total;
        let with = opt.cost(&f.upd, &IndexSet::single(f.idx_a)).total;
        assert!(with > without);
    }

    #[test]
    fn intersection_creates_interaction() {
        // benefit of idx_a depends on whether idx_b is present.
        let f = fixture();
        let opt = Optimizer::new(&f.catalog, &f.registry, &f.config);
        let c_empty = opt.cost(&f.stmt, &IndexSet::empty()).total;
        let c_a = opt.cost(&f.stmt, &IndexSet::single(f.idx_a)).total;
        let c_b = opt.cost(&f.stmt, &IndexSet::single(f.idx_b)).total;
        let c_ab = opt
            .cost(&f.stmt, &IndexSet::from_iter([f.idx_a, f.idx_b]))
            .total;
        let benefit_a_alone = c_empty - c_a;
        let benefit_a_given_b = c_b - c_ab;
        assert!(
            (benefit_a_alone - benefit_a_given_b).abs() > 1e-6,
            "expected an interaction between the two indexes"
        );
    }

    #[test]
    fn plan_description_is_informative() {
        let f = fixture();
        let opt = Optimizer::new(&f.catalog, &f.registry, &f.config);
        let plan = opt.cost(&f.stmt, &IndexSet::from_iter([f.idx_a, f.idx_b]));
        assert!(
            plan.description.contains("Index"),
            "expected an index-based plan, got {}",
            plan.description
        );
    }
}
