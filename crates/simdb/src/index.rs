//! Secondary index definitions, configurations and transition costs.
//!
//! The paper models the physical design as a subset of a universe `I` of
//! candidate indices.  Changing the materialized set from `X` to `Y` costs
//! `δ(X, Y)`, which is the sum of per-index creation costs for `Y − X` and
//! per-index drop costs for `X − Y`.  `δ` obeys the triangle inequality but is
//! *not* symmetric (creation is much more expensive than dropping) — this
//! asymmetry is precisely what makes the competitive analysis in the paper
//! non-trivial.

use crate::catalog::Catalog;
use crate::types::{ColumnId, TableId, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a (candidate or materialized) index.
///
/// Ids are minted by the [`IndexRegistry`]; the same logical index (same table
/// and key-column sequence) always maps to the same id, so ids can be used as
/// stable keys in the tuning algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// Definition of a secondary B-tree index: an ordered sequence of key columns
/// over one table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexDef {
    /// Identifier assigned by the registry.
    pub id: IndexId,
    /// Table the index is defined on.
    pub table: TableId,
    /// Key columns, in index order (prefix matching applies).
    pub key_columns: Vec<ColumnId>,
}

impl IndexDef {
    /// Human-readable name of the index, derived from the catalog.
    pub fn display_name(&self, catalog: &Catalog) -> String {
        let table = &catalog.table(self.table).name;
        let cols: Vec<&str> = self
            .key_columns
            .iter()
            .map(|c| catalog.column(*c).name.as_str())
            .collect();
        format!("idx_{}({})", table, cols.join(","))
    }

    /// Width in bytes of one index entry (key columns + row pointer).
    pub fn entry_width(&self, catalog: &Catalog) -> f64 {
        catalog.columns_width(&self.key_columns) + 12.0
    }

    /// Number of leaf pages of the index.
    pub fn pages(&self, catalog: &Catalog) -> f64 {
        let rows = catalog.table(self.table).row_count;
        ((rows * self.entry_width(catalog)) / PAGE_SIZE).max(1.0)
    }

    /// Estimated height of the B-tree (number of non-leaf levels).
    pub fn height(&self, catalog: &Catalog) -> f64 {
        let pages = self.pages(catalog);
        (pages.log2() / 8.0).ceil().max(1.0)
    }
}

/// A set of indices (an index *configuration*).
///
/// Stored as a sorted vector of ids; configurations encountered by the tuning
/// algorithms are small (tens of indices), so a sorted vector beats a hash set
/// both in speed and in memory, and gives deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IndexSet {
    ids: Vec<IndexId>,
}

/// Build a configuration from an arbitrary iterator (deduplicates).
impl FromIterator<IndexId> for IndexSet {
    fn from_iter<I: IntoIterator<Item = IndexId>>(iter: I) -> Self {
        let mut ids: Vec<IndexId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }
}

impl IndexSet {
    /// The empty configuration.
    pub fn empty() -> Self {
        Self { ids: Vec::new() }
    }

    /// Configuration containing a single index.
    pub fn single(id: IndexId) -> Self {
        Self { ids: vec![id] }
    }

    /// Number of indices in the configuration.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the configuration is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: IndexId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Iterate over the indices in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = IndexId> + '_ {
        self.ids.iter().copied()
    }

    /// Insert an index (no-op if already present).
    pub fn insert(&mut self, id: IndexId) {
        if let Err(pos) = self.ids.binary_search(&id) {
            self.ids.insert(pos, id);
        }
    }

    /// Remove an index (no-op if absent).
    pub fn remove(&mut self, id: IndexId) {
        if let Ok(pos) = self.ids.binary_search(&id) {
            self.ids.remove(pos);
        }
    }

    /// Set union.
    pub fn union(&self, other: &IndexSet) -> IndexSet {
        let mut out = self.clone();
        for id in other.iter() {
            out.insert(id);
        }
        out
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &IndexSet) -> IndexSet {
        IndexSet {
            ids: self
                .ids
                .iter()
                .copied()
                .filter(|id| !other.contains(*id))
                .collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &IndexSet) -> IndexSet {
        IndexSet {
            ids: self
                .ids
                .iter()
                .copied()
                .filter(|id| other.contains(*id))
                .collect(),
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &IndexSet) -> bool {
        self.ids.iter().all(|id| other.contains(*id))
    }

    /// The symmetric difference `self △ other`.
    pub fn symmetric_difference(&self, other: &IndexSet) -> IndexSet {
        self.difference(other).union(&other.difference(self))
    }

    /// Access the underlying sorted slice of ids.
    pub fn as_slice(&self) -> &[IndexId] {
        &self.ids
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

/// Interning registry of index definitions.
///
/// The registry guarantees that a given `(table, key columns)` pair is always
/// mapped to the same [`IndexId`], which lets the tuning algorithms accumulate
/// statistics about an index across statements.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IndexRegistry {
    defs: Vec<IndexDef>,
    by_key: HashMap<(TableId, Vec<ColumnId>), IndexId>,
    by_table: HashMap<TableId, Vec<IndexId>>,
}

impl IndexRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an index definition, returning its stable id.
    pub fn intern(&mut self, table: TableId, key_columns: Vec<ColumnId>) -> IndexId {
        if let Some(id) = self.by_key.get(&(table, key_columns.clone())) {
            return *id;
        }
        let id = IndexId(self.defs.len() as u32);
        self.by_key.insert((table, key_columns.clone()), id);
        self.by_table.entry(table).or_default().push(id);
        self.defs.push(IndexDef {
            id,
            table,
            key_columns,
        });
        id
    }

    /// Look up an existing definition without interning.
    pub fn lookup(&self, table: TableId, key_columns: &[ColumnId]) -> Option<IndexId> {
        self.by_key.get(&(table, key_columns.to_vec())).copied()
    }

    /// Definition for an id.
    pub fn def(&self, id: IndexId) -> &IndexDef {
        &self.defs[id.0 as usize]
    }

    /// All indices registered on a table.
    pub fn indexes_on(&self, table: TableId) -> &[IndexId] {
        self.by_table
            .get(&table)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of registered index definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterate over all definitions.
    pub fn iter(&self) -> impl Iterator<Item = &IndexDef> {
        self.defs.iter()
    }
}

/// Cost model for index transitions (`δ` in the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitionCostModel {
    /// I/O cost per heap page scanned while building an index.
    pub build_scan_page_cost: f64,
    /// CPU cost per row sorted while building an index.
    pub build_sort_row_cost: f64,
    /// I/O cost per index page written while building an index.
    pub build_write_page_cost: f64,
    /// Flat cost of dropping an index (catalog update; essentially free
    /// compared to creation, which is what makes `δ` asymmetric).
    pub drop_cost: f64,
}

impl Default for TransitionCostModel {
    fn default() -> Self {
        Self {
            build_scan_page_cost: 1.0,
            build_sort_row_cost: 0.02,
            build_write_page_cost: 1.0,
            drop_cost: 1.0,
        }
    }
}

impl TransitionCostModel {
    /// Cost `δ⁺(a)` of creating index `a`.
    pub fn create_cost(&self, catalog: &Catalog, def: &IndexDef) -> f64 {
        let table = catalog.table(def.table);
        let rows = table.row_count;
        let scan = table.pages() * self.build_scan_page_cost;
        let sort = rows * rows.max(2.0).log2() * self.build_sort_row_cost / 10.0;
        let write = def.pages(catalog) * self.build_write_page_cost;
        scan + sort + write
    }

    /// Cost `δ⁻(a)` of dropping index `a`.
    pub fn drop_cost(&self, _catalog: &Catalog, _def: &IndexDef) -> f64 {
        self.drop_cost
    }

    /// Transition cost `δ(X, Y)`: create everything in `Y − X`, drop
    /// everything in `X − Y`.
    pub fn transition_cost(
        &self,
        catalog: &Catalog,
        registry: &IndexRegistry,
        from: &IndexSet,
        to: &IndexSet,
    ) -> f64 {
        let mut cost = 0.0;
        for id in to.difference(from).iter() {
            cost += self.create_cost(catalog, registry.def(id));
        }
        for id in from.difference(to).iter() {
            cost += self.drop_cost(catalog, registry.def(id));
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;
    use crate::types::DataType;

    fn setup() -> (Catalog, IndexRegistry) {
        let mut b = CatalogBuilder::new();
        b.table("t1")
            .rows(1_000_000.0)
            .column("a", DataType::Integer, 1_000_000.0)
            .column("b", DataType::Integer, 1_000.0)
            .column("c", DataType::Text, 500.0)
            .finish();
        b.table("t2")
            .rows(10_000.0)
            .column("x", DataType::Integer, 10_000.0)
            .finish();
        (b.build(), IndexRegistry::new())
    }

    #[test]
    fn interning_is_stable() {
        let (catalog, mut reg) = setup();
        let t1 = catalog.table_by_name("t1").unwrap();
        let a = catalog.column_by_name("a", &[]).unwrap();
        let b = catalog.column_by_name("b", &[]).unwrap();
        let i1 = reg.intern(t1, vec![a, b]);
        let i2 = reg.intern(t1, vec![a, b]);
        assert_eq!(i1, i2);
        let i3 = reg.intern(t1, vec![b, a]);
        assert_ne!(i1, i3, "column order is significant");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn indexes_on_table() {
        let (catalog, mut reg) = setup();
        let t1 = catalog.table_by_name("t1").unwrap();
        let t2 = catalog.table_by_name("t2").unwrap();
        let a = catalog.column_by_name("a", &[]).unwrap();
        let x = catalog.column_by_name("x", &[]).unwrap();
        let i1 = reg.intern(t1, vec![a]);
        let i2 = reg.intern(t2, vec![x]);
        assert_eq!(reg.indexes_on(t1), &[i1]);
        assert_eq!(reg.indexes_on(t2), &[i2]);
    }

    #[test]
    fn index_set_operations() {
        let a = IndexId(1);
        let b = IndexId(2);
        let c = IndexId(3);
        let s1 = IndexSet::from_iter([a, b]);
        let s2 = IndexSet::from_iter([b, c]);
        assert_eq!(s1.union(&s2).len(), 3);
        assert_eq!(s1.intersection(&s2).as_slice(), &[b]);
        assert_eq!(s1.difference(&s2).as_slice(), &[a]);
        assert_eq!(s1.symmetric_difference(&s2).len(), 2);
        assert!(IndexSet::single(a).is_subset_of(&s1));
        assert!(!s1.is_subset_of(&s2));
    }

    #[test]
    fn index_set_insert_remove_keeps_sorted() {
        let mut s = IndexSet::empty();
        s.insert(IndexId(5));
        s.insert(IndexId(1));
        s.insert(IndexId(3));
        s.insert(IndexId(3));
        assert_eq!(s.as_slice(), &[IndexId(1), IndexId(3), IndexId(5)]);
        s.remove(IndexId(3));
        assert_eq!(s.as_slice(), &[IndexId(1), IndexId(5)]);
        s.remove(IndexId(42)); // no-op
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn index_set_display() {
        let s = IndexSet::from_iter([IndexId(2), IndexId(0)]);
        assert_eq!(s.to_string(), "{I0, I2}");
        assert_eq!(IndexSet::empty().to_string(), "{}");
    }

    #[test]
    fn creation_much_more_expensive_than_drop() {
        let (catalog, mut reg) = setup();
        let t1 = catalog.table_by_name("t1").unwrap();
        let a = catalog.column_by_name("a", &[]).unwrap();
        let id = reg.intern(t1, vec![a]);
        let model = TransitionCostModel::default();
        let create = model.create_cost(&catalog, reg.def(id));
        let drop = model.drop_cost(&catalog, reg.def(id));
        assert!(
            create > 100.0 * drop,
            "create {create} should dwarf drop {drop}"
        );
    }

    #[test]
    fn transition_cost_asymmetric_but_triangle() {
        let (catalog, mut reg) = setup();
        let t1 = catalog.table_by_name("t1").unwrap();
        let t2 = catalog.table_by_name("t2").unwrap();
        let a = catalog.column_by_name("a", &[]).unwrap();
        let x = catalog.column_by_name("x", &[]).unwrap();
        let i1 = reg.intern(t1, vec![a]);
        let i2 = reg.intern(t2, vec![x]);
        let model = TransitionCostModel::default();
        let e = IndexSet::empty();
        let s1 = IndexSet::single(i1);
        let s12 = IndexSet::from_iter([i1, i2]);

        let d_up = model.transition_cost(&catalog, &reg, &e, &s1);
        let d_down = model.transition_cost(&catalog, &reg, &s1, &e);
        assert!(d_up > d_down, "asymmetry: create > drop");

        // Triangle inequality: δ(∅, s12) ≤ δ(∅, s1) + δ(s1, s12)
        let direct = model.transition_cost(&catalog, &reg, &e, &s12);
        let via = model.transition_cost(&catalog, &reg, &e, &s1)
            + model.transition_cost(&catalog, &reg, &s1, &s12);
        assert!(direct <= via + 1e-9);

        // δ(X, X) = 0
        assert_eq!(model.transition_cost(&catalog, &reg, &s1, &s1), 0.0);
    }

    #[test]
    fn larger_tables_have_costlier_indexes() {
        let (catalog, mut reg) = setup();
        let t1 = catalog.table_by_name("t1").unwrap();
        let t2 = catalog.table_by_name("t2").unwrap();
        let a = catalog.column_by_name("a", &[]).unwrap();
        let x = catalog.column_by_name("x", &[]).unwrap();
        let big = reg.intern(t1, vec![a]);
        let small = reg.intern(t2, vec![x]);
        let model = TransitionCostModel::default();
        assert!(
            model.create_cost(&catalog, reg.def(big)) > model.create_cost(&catalog, reg.def(small))
        );
        assert!(reg.def(big).pages(&catalog) > reg.def(small).pages(&catalog));
        assert!(reg.def(big).height(&catalog) >= 1.0);
    }

    #[test]
    fn display_name_mentions_columns() {
        let (catalog, mut reg) = setup();
        let t1 = catalog.table_by_name("t1").unwrap();
        let a = catalog.column_by_name("a", &[]).unwrap();
        let b = catalog.column_by_name("b", &[]).unwrap();
        let id = reg.intern(t1, vec![a, b]);
        let name = reg.def(id).display_name(&catalog);
        assert!(name.contains("a,b"), "{name}");
        assert!(name.contains("t1"), "{name}");
    }
}
