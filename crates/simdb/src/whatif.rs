//! Caching and instrumentation around the what-if optimizer.
//!
//! The paper reports the number of what-if optimizer invocations per query as
//! one of WFIT's overhead metrics (§6.2 "Overhead": "WFIT averaged between 5
//! and 100 calls per query"), so the façade counts both raw calls and cache
//! hits.  Caching mirrors the configuration-parametric optimizations of Bruno
//! & Nehme \[8\] that the paper cites as the way to make repeated what-if calls
//! cheap.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::index::IndexSet;
use crate::optimizer::PlanCost;

/// Counters describing what-if optimizer usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhatIfStats {
    /// Number of `cost()` requests issued by callers.
    pub requests: u64,
    /// Number of requests that had to run the optimizer (cache misses).
    pub optimizer_calls: u64,
    /// Number of requests answered from the cache.
    pub cache_hits: u64,
    /// Number of entries evicted to honor a capacity bound (0 for unbounded
    /// caches).
    pub evictions: u64,
    /// Number of entries resident at snapshot time (occupancy).
    pub entries: u64,
    /// Misses whose key was still remembered by an ARC ghost list — the
    /// "evicted too early" signal (0 for unbounded and CLOCK caches).
    #[serde(default)]
    pub ghost_hits: u64,
    /// Hits promoted from the ARC recency list T1 into the protected
    /// frequency list T2 (0 for unbounded and CLOCK caches).
    #[serde(default)]
    pub policy_promotions: u64,
}

impl WhatIfStats {
    /// Fraction of requests answered from the cache (0.0 when no request was
    /// made).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// Merge counters from another stats snapshot (used to aggregate the
    /// per-tenant caches of a multi-tenant service, and the per-shard
    /// snapshots of a sharded cache).  Field-wise addition, so the operation
    /// is associative and commutative with [`WhatIfStats::default`] as the
    /// identity — aggregation order can never change a report.
    pub fn merge(&self, other: &WhatIfStats) -> WhatIfStats {
        WhatIfStats {
            requests: self.requests + other.requests,
            optimizer_calls: self.optimizer_calls + other.optimizer_calls,
            cache_hits: self.cache_hits + other.cache_hits,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
            ghost_hits: self.ghost_hits + other.ghost_hits,
            policy_promotions: self.policy_promotions + other.policy_promotions,
        }
    }
}

/// A cache of what-if results keyed by `(statement fingerprint, configuration)`.
#[derive(Debug, Default)]
pub struct WhatIfCache {
    entries: Mutex<HashMap<(u64, IndexSet), PlanCost>>,
    requests: AtomicU64,
    optimizer_calls: AtomicU64,
    cache_hits: AtomicU64,
}

impl WhatIfCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the cost for `(fingerprint, config)`, computing it with
    /// `compute` on a miss.
    pub fn get_or_compute(
        &self,
        fingerprint: u64,
        config: &IndexSet,
        compute: impl FnOnce() -> PlanCost,
    ) -> PlanCost {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = (fingerprint, config.clone());
        {
            let entries = self.entries.lock();
            if let Some(hit) = entries.get(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        self.optimizer_calls.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        self.entries.lock().insert(key, value.clone());
        value
    }

    /// Current counter values.  This per-database memo never evicts, so
    /// `evictions` is always 0 and `entries` mirrors [`WhatIfCache::len`].
    pub fn stats(&self) -> WhatIfStats {
        WhatIfStats {
            requests: self.requests.load(Ordering::Relaxed),
            optimizer_calls: self.optimizer_calls.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            evictions: 0,
            entries: self.len() as u64,
            ghost_hits: 0,
            policy_promotions: 0,
        }
    }

    /// Reset the counters (the cache contents are kept).
    pub fn reset_stats(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.optimizer_calls.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
    }

    /// Drop all cached plans (typically called when a statement leaves the
    /// tuning window and its fingerprint will not be seen again).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(total: f64) -> PlanCost {
        PlanCost {
            total,
            used_indexes: IndexSet::empty(),
            description: "test".into(),
        }
    }

    #[test]
    fn caches_by_fingerprint_and_config() {
        let cache = WhatIfCache::new();
        let config = IndexSet::empty();
        let a = cache.get_or_compute(1, &config, || plan(10.0));
        let b = cache.get_or_compute(1, &config, || plan(99.0));
        assert_eq!(a.total, 10.0);
        assert_eq!(b.total, 10.0, "second call must hit the cache");
        let c = cache.get_or_compute(2, &config, || plan(20.0));
        assert_eq!(c.total, 20.0);
        let stats = cache.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.optimizer_calls, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn different_configs_are_distinct_entries() {
        let cache = WhatIfCache::new();
        let c1 = IndexSet::empty();
        let c2 = IndexSet::single(crate::index::IndexId(1));
        cache.get_or_compute(1, &c1, || plan(1.0));
        cache.get_or_compute(1, &c2, || plan(2.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().optimizer_calls, 2);
    }

    #[test]
    fn reset_and_clear() {
        let cache = WhatIfCache::new();
        cache.get_or_compute(1, &IndexSet::empty(), || plan(1.0));
        cache.reset_stats();
        assert_eq!(
            cache.stats(),
            WhatIfStats {
                entries: 1,
                ..WhatIfStats::default()
            },
            "reset clears the counters but keeps the entries"
        );
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
