//! Single-table access path selection: sequential scan, index scan, covering
//! (index-only) scan and index intersection.

use super::CostContext;
use crate::index::IndexId;
use crate::query::{Predicate, PredicateKind};
use crate::types::{ColumnId, TableId};

/// The chosen access path for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableAccessPlan {
    /// Estimated cost of producing the table's qualifying rows.
    pub cost: f64,
    /// Estimated number of rows produced (all predicates applied).
    pub output_rows: f64,
    /// Indices used by the path.
    pub used_indexes: Vec<IndexId>,
    /// Whether the path delivers rows ordered on the requested prefix.
    pub provides_order: bool,
    /// Human-readable description of the path (for plan explanation).
    pub description: String,
}

/// An "extra" equality constraint injected by an index-nested-loop join:
/// the inner table is probed with `column = <outer value>` at the given
/// per-probe selectivity.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConstraint {
    /// Inner join column.
    pub column: ColumnId,
    /// Selectivity of the probe (typically `1 / distinct(column)`).
    pub selectivity: f64,
}

/// Compute the cheapest access path for `table`.
///
/// * `predicates` — the statement's predicates restricted to this table;
/// * `required_columns` — columns of this table the statement needs to read;
/// * `available` — indices on this table present in the hypothetical
///   configuration;
/// * `desired_order` — prefix of `ORDER BY` columns belonging to this table;
/// * `probe` — optional nested-loop probe constraint (see [`ProbeConstraint`]).
pub fn best_access_path(
    ctx: &CostContext<'_>,
    table: TableId,
    predicates: &[&Predicate],
    required_columns: &[ColumnId],
    available: &[IndexId],
    desired_order: &[ColumnId],
    probe: Option<ProbeConstraint>,
) -> TableAccessPlan {
    let mut best = seq_scan(ctx, table, predicates, probe, desired_order);

    // Single-index paths.
    for &idx in available {
        if let Some(plan) = index_scan(
            ctx,
            table,
            idx,
            predicates,
            required_columns,
            desired_order,
            probe,
        ) {
            if plan.cost < best.cost {
                best = plan;
            }
        }
    }

    // Index-intersection paths over pairs of available indices.
    for (i, &a) in available.iter().enumerate() {
        for &b in available.iter().skip(i + 1) {
            if let Some(plan) = index_intersection(ctx, table, a, b, predicates, probe) {
                if plan.cost < best.cost {
                    best = plan;
                }
            }
        }
    }

    best
}

/// Combined selectivity of all predicates plus the optional probe.
fn total_selectivity(predicates: &[&Predicate], probe: Option<ProbeConstraint>) -> f64 {
    let mut sel: f64 = predicates.iter().map(|p| p.selectivity).product();
    if let Some(p) = probe {
        sel *= p.selectivity;
    }
    sel.clamp(1e-9, 1.0)
}

fn seq_scan(
    ctx: &CostContext<'_>,
    table: TableId,
    predicates: &[&Predicate],
    probe: Option<ProbeConstraint>,
    desired_order: &[ColumnId],
) -> TableAccessPlan {
    let meta = ctx.catalog.table(table);
    let rows = meta.row_count;
    let pages = meta.pages();
    let npreds = predicates.len() as f64 + probe.map(|_| 1.0).unwrap_or(0.0);
    let cost = pages * ctx.config.seq_page_cost
        + rows * ctx.config.cpu_tuple_cost
        + rows * npreds * ctx.config.cpu_operator_cost;
    let output_rows = (rows * total_selectivity(predicates, probe)).max(1.0);
    TableAccessPlan {
        cost,
        output_rows,
        used_indexes: Vec::new(),
        provides_order: desired_order.is_empty(),
        description: format!("SeqScan({})", meta.name),
    }
}

/// Describes how far an index's key prefix is matched by the predicates.
struct PrefixMatch {
    /// Selectivity of the matched prefix (drives how much of the index is read).
    matched_selectivity: f64,
    /// Number of leading key columns matched.
    matched_columns: usize,
    /// Whether any equality/range predicate was matched at all.
    any_match: bool,
}

fn match_prefix(
    ctx: &CostContext<'_>,
    idx: IndexId,
    predicates: &[&Predicate],
    probe: Option<ProbeConstraint>,
) -> PrefixMatch {
    let def = ctx.registry.def(idx);
    let mut matched_selectivity = 1.0;
    let mut matched_columns = 0usize;
    let mut any_match = false;
    for &key_col in &def.key_columns {
        // Probe constraint behaves like an equality predicate.
        let probe_hit = probe.filter(|p| p.column == key_col);
        let eq = predicates
            .iter()
            .find(|p| p.column == key_col && p.kind == PredicateKind::Equality);
        let range = predicates.iter().find(|p| {
            p.column == key_col && matches!(p.kind, PredicateKind::Range | PredicateKind::Like)
        });
        if let Some(p) = probe_hit {
            matched_selectivity *= p.selectivity;
            matched_columns += 1;
            any_match = true;
            continue;
        }
        if let Some(p) = eq {
            matched_selectivity *= p.selectivity;
            matched_columns += 1;
            any_match = true;
            continue;
        }
        if let Some(p) = range {
            matched_selectivity *= p.selectivity;
            matched_columns += 1;
            any_match = true;
        }
        // A range predicate (or no predicate) terminates the usable prefix.
        break;
    }
    PrefixMatch {
        matched_selectivity: matched_selectivity.clamp(1e-9, 1.0),
        matched_columns,
        any_match,
    }
}

fn index_scan(
    ctx: &CostContext<'_>,
    table: TableId,
    idx: IndexId,
    predicates: &[&Predicate],
    required_columns: &[ColumnId],
    desired_order: &[ColumnId],
    probe: Option<ProbeConstraint>,
) -> Option<TableAccessPlan> {
    let def = ctx.registry.def(idx);
    debug_assert_eq!(def.table, table);
    let meta = ctx.catalog.table(table);
    let rows = meta.row_count;
    let heap_pages = meta.pages();
    let idx_pages = def.pages(ctx.catalog);

    let covering = required_columns.iter().all(|c| def.key_columns.contains(c));
    let prefix = match_prefix(ctx, idx, predicates, probe);

    // Does the index deliver the desired order?  It does when the desired
    // order columns are a prefix of the key columns (possibly after the
    // equality-matched prefix — we keep the simple strict-prefix rule).
    let provides_order = !desired_order.is_empty()
        && desired_order.len() <= def.key_columns.len()
        && desired_order
            .iter()
            .zip(def.key_columns.iter())
            .all(|(a, b)| a == b);

    if !prefix.any_match && !covering && !provides_order {
        // The index cannot help this table at all.
        return None;
    }

    // Fraction of the index that must be read.
    let scan_fraction = if prefix.any_match {
        prefix.matched_selectivity
    } else {
        1.0 // full index scan (only useful when covering or providing order)
    };

    let descent = def.height(ctx.catalog) * ctx.config.random_page_cost;
    let leaf = scan_fraction * idx_pages * ctx.config.seq_page_cost
        + scan_fraction * rows * ctx.config.cpu_index_tuple_cost;

    let matched_rows = rows * scan_fraction;
    let fetch = if covering {
        0.0
    } else {
        ctx.pages_fetched(matched_rows, heap_pages)
            * ctx.config.random_page_cost
            * ctx.config.fetch_discount
    };

    // Residual predicates are evaluated on every fetched row.
    let residual_count = predicates.len().saturating_sub(prefix.matched_columns) as f64;
    let residual = matched_rows * residual_count * ctx.config.cpu_operator_cost;

    let cost = descent + leaf + fetch + residual;
    let output_rows = (rows * total_selectivity(predicates, probe)).max(1.0);
    let kind = if covering {
        "IndexOnlyScan"
    } else {
        "IndexScan"
    };
    Some(TableAccessPlan {
        cost,
        output_rows,
        used_indexes: vec![idx],
        provides_order: provides_order || desired_order.is_empty(),
        description: format!("{}({})", kind, def.display_name(ctx.catalog)),
    })
}

fn index_intersection(
    ctx: &CostContext<'_>,
    table: TableId,
    a: IndexId,
    b: IndexId,
    predicates: &[&Predicate],
    probe: Option<ProbeConstraint>,
) -> Option<TableAccessPlan> {
    let meta = ctx.catalog.table(table);
    let rows = meta.row_count;
    let heap_pages = meta.pages();

    let pa = match_prefix(ctx, a, predicates, None);
    let pb = match_prefix(ctx, b, predicates, None);
    if !pa.any_match || !pb.any_match {
        return None;
    }
    // Intersection only pays off when both sides filter something and together
    // they are tighter than either alone; the cost comparison in the caller
    // takes care of the rest.
    let def_a = ctx.registry.def(a);
    let def_b = ctx.registry.def(b);

    let leaf = |def: &crate::index::IndexDef, sel: f64| {
        def.height(ctx.catalog) * ctx.config.random_page_cost
            + sel * def.pages(ctx.catalog) * ctx.config.seq_page_cost
            + sel * rows * ctx.config.cpu_index_tuple_cost
    };
    let bitmap_cpu =
        (pa.matched_selectivity + pb.matched_selectivity) * rows * ctx.config.cpu_operator_cost;

    let combined_sel = (pa.matched_selectivity * pb.matched_selectivity).clamp(1e-9, 1.0);
    let fetched_rows = rows * combined_sel;
    let fetch = ctx.pages_fetched(fetched_rows, heap_pages)
        * ctx.config.random_page_cost
        * ctx.config.fetch_discount;

    let residual_count =
        predicates.len().saturating_sub(2) as f64 + probe.map(|_| 1.0).unwrap_or(0.0);
    let residual = fetched_rows * residual_count * ctx.config.cpu_operator_cost;

    let cost = leaf(def_a, pa.matched_selectivity)
        + leaf(def_b, pb.matched_selectivity)
        + bitmap_cpu
        + fetch
        + residual;
    let output_rows = (rows * total_selectivity(predicates, probe)).max(1.0);
    Some(TableAccessPlan {
        cost,
        output_rows,
        used_indexes: vec![a, b],
        provides_order: false,
        description: format!(
            "IndexIntersection({}, {})",
            def_a.display_name(ctx.catalog),
            def_b.display_name(ctx.catalog)
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogBuilder};
    use crate::cost::CostModelConfig;
    use crate::index::{IndexRegistry, IndexSet};
    use crate::types::DataType;

    struct Fixture {
        catalog: Catalog,
        registry: IndexRegistry,
        config: CostModelConfig,
        table: TableId,
        col_a: ColumnId,
        col_b: ColumnId,
        col_c: ColumnId,
        idx_a: IndexId,
        idx_b: IndexId,
        idx_ab: IndexId,
    }

    fn fixture() -> Fixture {
        let mut b = CatalogBuilder::new();
        b.table("t")
            .rows(1_000_000.0)
            .column("a", DataType::Integer, 100_000.0)
            .column("b", DataType::Integer, 50_000.0)
            .column("c", DataType::Integer, 100.0)
            .finish();
        let catalog = b.build();
        let table = catalog.table_by_name("t").unwrap();
        let col_a = catalog.column_by_name("a", &[]).unwrap();
        let col_b = catalog.column_by_name("b", &[]).unwrap();
        let col_c = catalog.column_by_name("c", &[]).unwrap();
        let mut registry = IndexRegistry::new();
        let idx_a = registry.intern(table, vec![col_a]);
        let idx_b = registry.intern(table, vec![col_b]);
        let idx_ab = registry.intern(table, vec![col_a, col_b]);
        Fixture {
            catalog,
            registry,
            config: CostModelConfig::default(),
            table,
            col_a,
            col_b,
            col_c,
            idx_a,
            idx_b,
            idx_ab,
        }
    }

    fn pred(f: &Fixture, col: ColumnId, kind: PredicateKind, sel: f64) -> Predicate {
        Predicate {
            table: f.table,
            column: col,
            kind,
            selectivity: sel,
        }
    }

    #[test]
    fn selective_equality_prefers_index() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let p = pred(&f, f.col_a, PredicateKind::Equality, 1e-5);
        let preds = [&p];
        let no_index = best_access_path(&ctx, f.table, &preds, &[f.col_a], &[], &[], None);
        let with_index = best_access_path(&ctx, f.table, &preds, &[f.col_a], &[f.idx_a], &[], None);
        assert!(no_index.used_indexes.is_empty());
        assert_eq!(with_index.used_indexes, vec![f.idx_a]);
        assert!(with_index.cost < no_index.cost / 10.0);
    }

    #[test]
    fn unselective_predicate_prefers_seq_scan() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let p = pred(&f, f.col_c, PredicateKind::Range, 0.9);
        let idx_c = {
            // build an index on c on the fly via a fresh registry clone
            let mut reg = f.registry.clone();
            reg.intern(f.table, vec![f.col_c])
        };
        let _ = idx_c;
        let preds = [&p];
        // Even offering the (a) index, the planner should stick to a seq scan
        // because the predicate is not on a.
        let plan = best_access_path(&ctx, f.table, &preds, &[f.col_c], &[f.idx_a], &[], None);
        assert!(plan.used_indexes.is_empty(), "{}", plan.description);
    }

    #[test]
    fn covering_index_avoids_heap_fetch() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let p = pred(&f, f.col_a, PredicateKind::Range, 0.05);
        let preds = [&p];
        // Non-covering: query also needs column c.
        let non_covering = best_access_path(
            &ctx,
            f.table,
            &preds,
            &[f.col_a, f.col_c],
            &[f.idx_ab],
            &[],
            None,
        );
        // Covering: query only needs a and b, which idx_ab contains.
        let covering = best_access_path(
            &ctx,
            f.table,
            &preds,
            &[f.col_a, f.col_b],
            &[f.idx_ab],
            &[],
            None,
        );
        assert!(covering.cost < non_covering.cost);
        assert_eq!(covering.used_indexes, vec![f.idx_ab]);
    }

    #[test]
    fn multi_column_prefix_match_beats_single_column() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let p1 = pred(&f, f.col_a, PredicateKind::Equality, 1e-5);
        let p2 = pred(&f, f.col_b, PredicateKind::Range, 0.01);
        let preds = [&p1, &p2];
        let single = best_access_path(&ctx, f.table, &preds, &[f.col_a], &[f.idx_a], &[], None);
        let multi = best_access_path(&ctx, f.table, &preds, &[f.col_a], &[f.idx_ab], &[], None);
        assert!(multi.cost <= single.cost);
        assert_eq!(multi.used_indexes, vec![f.idx_ab]);
    }

    #[test]
    fn intersection_used_when_combined_selectivity_pays_off() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        // Each predicate is mildly selective; combined they are very selective.
        let p1 = pred(&f, f.col_a, PredicateKind::Range, 0.02);
        let p2 = pred(&f, f.col_b, PredicateKind::Range, 0.02);
        let preds = [&p1, &p2];
        let plan = best_access_path(
            &ctx,
            f.table,
            &preds,
            &[f.col_a, f.col_b, f.col_c],
            &[f.idx_a, f.idx_b],
            &[],
            None,
        );
        assert_eq!(plan.used_indexes.len(), 2, "{}", plan.description);
        // And the two-index plan must beat both single-index plans.
        let single_a = best_access_path(
            &ctx,
            f.table,
            &preds,
            &[f.col_a, f.col_b, f.col_c],
            &[f.idx_a],
            &[],
            None,
        );
        assert!(plan.cost < single_a.cost);
    }

    #[test]
    fn probe_constraint_enables_index_use_without_predicates() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let probe = ProbeConstraint {
            column: f.col_a,
            selectivity: 1e-5,
        };
        let plan = best_access_path(&ctx, f.table, &[], &[f.col_a], &[f.idx_a], &[], Some(probe));
        assert_eq!(plan.used_indexes, vec![f.idx_a]);
        let no_idx = best_access_path(&ctx, f.table, &[], &[f.col_a], &[], &[], Some(probe));
        assert!(plan.cost < no_idx.cost);
    }

    #[test]
    fn order_providing_index_reports_order() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let plan = best_access_path(&ctx, f.table, &[], &[f.col_a], &[f.idx_a], &[f.col_a], None);
        assert!(plan.provides_order, "{}", plan.description);
        let seq = best_access_path(&ctx, f.table, &[], &[f.col_a], &[], &[f.col_a], None);
        assert!(!seq.provides_order);
    }

    #[test]
    fn output_rows_reflect_all_predicates() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let p1 = pred(&f, f.col_a, PredicateKind::Equality, 0.001);
        let p2 = pred(&f, f.col_c, PredicateKind::Range, 0.5);
        let preds = [&p1, &p2];
        let plan = best_access_path(&ctx, f.table, &preds, &[f.col_a], &[f.idx_a], &[], None);
        let expected = 1_000_000.0 * 0.001 * 0.5;
        assert!((plan.output_rows - expected).abs() / expected < 0.01);
    }

    #[test]
    fn more_indexes_never_increase_cost() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let p = pred(&f, f.col_a, PredicateKind::Equality, 1e-4);
        let preds = [&p];
        let small = best_access_path(&ctx, f.table, &preds, &[f.col_a], &[f.idx_b], &[], None);
        let large = best_access_path(
            &ctx,
            f.table,
            &preds,
            &[f.col_a],
            &[f.idx_a, f.idx_b, f.idx_ab],
            &[],
            None,
        );
        assert!(large.cost <= small.cost + 1e-9);
    }

    #[test]
    fn used_indexes_are_subset_of_available() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let p1 = pred(&f, f.col_a, PredicateKind::Range, 0.01);
        let p2 = pred(&f, f.col_b, PredicateKind::Range, 0.01);
        let preds = [&p1, &p2];
        for available in [
            vec![],
            vec![f.idx_a],
            vec![f.idx_b],
            vec![f.idx_a, f.idx_b, f.idx_ab],
        ] {
            let plan = best_access_path(
                &ctx,
                f.table,
                &preds,
                &[f.col_a, f.col_b],
                &available,
                &[],
                None,
            );
            let avail_set = IndexSet::from_iter(available.iter().copied());
            for u in &plan.used_indexes {
                assert!(avail_set.contains(*u));
            }
        }
    }
}
