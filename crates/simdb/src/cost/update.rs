//! Costing of data-modification statements (`UPDATE`, `DELETE`, `INSERT`),
//! including index maintenance.
//!
//! Index maintenance is what gives indexes a *negative* benefit on update
//! statements, which is central to the benchmark workload: "most indices are
//! beneficial only for short windows of the workload, due to intervening
//! updates that make indices expensive to maintain" (§6.2).

use super::access::best_access_path;
use super::CostContext;
use crate::index::{IndexId, IndexSet};
use crate::query::{DeleteStmt, InsertStmt, UpdateStmt};
use crate::types::ColumnId;

/// Outcome of planning a data-modification statement.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// Estimated total cost (row location + row writes + index maintenance).
    pub cost: f64,
    /// Estimated number of modified rows.
    pub affected_rows: f64,
    /// Indices used to locate the affected rows *plus* indices that must be
    /// maintained.  Both kinds affect the statement's cost under the
    /// configuration, so both must be reported as "used" for the index
    /// benefit graph to stay consistent.
    pub used_indexes: Vec<IndexId>,
    /// Description of the row-location path.
    pub description: String,
}

/// Cost an `UPDATE` statement under the hypothetical configuration.
pub fn cost_update(ctx: &CostContext<'_>, stmt: &UpdateStmt, config: &IndexSet) -> UpdatePlan {
    let table_meta = ctx.catalog.table(stmt.table);
    let preds: Vec<&crate::query::Predicate> = stmt.predicates.iter().collect();
    let required: Vec<ColumnId> = stmt.referenced_columns.clone();
    let available: Vec<IndexId> = ctx
        .registry
        .indexes_on(stmt.table)
        .iter()
        .copied()
        .filter(|i| config.contains(*i))
        .collect();

    let locate = best_access_path(ctx, stmt.table, &preds, &required, &available, &[], None);
    let affected = locate.output_rows.min(table_meta.row_count);

    let mut cost = locate.cost + affected * ctx.config.write_row_cost;
    let mut used = locate.used_indexes.clone();

    // Every materialized index on this table whose key contains a modified
    // column must be maintained.
    for &idx in &available {
        let def = ctx.registry.def(idx);
        let touches_modified = def.key_columns.iter().any(|c| stmt.set_columns.contains(c));
        if touches_modified {
            cost += affected * ctx.config.index_maintenance_row_cost;
            if !used.contains(&idx) {
                used.push(idx);
            }
        }
    }

    UpdatePlan {
        cost,
        affected_rows: affected,
        used_indexes: used,
        description: format!("Update[{}]", locate.description),
    }
}

/// Cost a `DELETE` statement under the hypothetical configuration.
pub fn cost_delete(ctx: &CostContext<'_>, stmt: &DeleteStmt, config: &IndexSet) -> UpdatePlan {
    let table_meta = ctx.catalog.table(stmt.table);
    let preds: Vec<&crate::query::Predicate> = stmt.predicates.iter().collect();
    let required: Vec<ColumnId> = stmt.referenced_columns.clone();
    let available: Vec<IndexId> = ctx
        .registry
        .indexes_on(stmt.table)
        .iter()
        .copied()
        .filter(|i| config.contains(*i))
        .collect();

    let locate = best_access_path(ctx, stmt.table, &preds, &required, &available, &[], None);
    let affected = locate.output_rows.min(table_meta.row_count);

    let mut cost = locate.cost + affected * ctx.config.write_row_cost;
    let mut used = locate.used_indexes.clone();
    // Deleting a row touches every index on the table.
    for &idx in &available {
        cost += affected * ctx.config.index_maintenance_row_cost;
        if !used.contains(&idx) {
            used.push(idx);
        }
    }

    UpdatePlan {
        cost,
        affected_rows: affected,
        used_indexes: used,
        description: format!("Delete[{}]", locate.description),
    }
}

/// Cost an `INSERT` statement under the hypothetical configuration.
pub fn cost_insert(ctx: &CostContext<'_>, stmt: &InsertStmt, config: &IndexSet) -> UpdatePlan {
    let rows = stmt.row_count.max(1.0);
    let available: Vec<IndexId> = ctx
        .registry
        .indexes_on(stmt.table)
        .iter()
        .copied()
        .filter(|i| config.contains(*i))
        .collect();

    let mut cost = rows * ctx.config.write_row_cost;
    let mut used = Vec::new();
    for &idx in &available {
        cost += rows * ctx.config.index_maintenance_row_cost;
        used.push(idx);
    }

    UpdatePlan {
        cost,
        affected_rows: rows,
        used_indexes: used,
        description: format!("Insert[{}]", ctx.catalog.table(stmt.table).name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogBuilder};
    use crate::cost::CostModelConfig;
    use crate::index::IndexRegistry;
    use crate::query::{Predicate, PredicateKind};
    use crate::types::{DataType, TableId};

    struct Fixture {
        catalog: Catalog,
        registry: IndexRegistry,
        config: CostModelConfig,
        table: TableId,
        key: ColumnId,
        payload: ColumnId,
        idx_key: IndexId,
        idx_payload: IndexId,
    }

    fn fixture() -> Fixture {
        let mut b = CatalogBuilder::new();
        b.table("lineitem")
            .rows(6_000_000.0)
            .column("l_price", DataType::Decimal, 900_000.0)
            .column("l_tax", DataType::Decimal, 9.0)
            .finish();
        let catalog = b.build();
        let table = catalog.table_by_name("lineitem").unwrap();
        let key = catalog.column_by_name("l_price", &[]).unwrap();
        let payload = catalog.column_by_name("l_tax", &[]).unwrap();
        let mut registry = IndexRegistry::new();
        let idx_key = registry.intern(table, vec![key]);
        let idx_payload = registry.intern(table, vec![payload]);
        Fixture {
            catalog,
            registry,
            config: CostModelConfig::default(),
            table,
            key,
            payload,
            idx_key,
            idx_payload,
        }
    }

    fn update_stmt(f: &Fixture) -> UpdateStmt {
        UpdateStmt {
            table: f.table,
            set_columns: vec![f.payload],
            predicates: vec![Predicate {
                table: f.table,
                column: f.key,
                kind: PredicateKind::Range,
                selectivity: 1e-4,
            }],
            referenced_columns: vec![f.key],
        }
    }

    #[test]
    fn index_on_predicate_column_speeds_up_update() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let stmt = update_stmt(&f);
        let without = cost_update(&ctx, &stmt, &IndexSet::empty());
        let with = cost_update(&ctx, &stmt, &IndexSet::single(f.idx_key));
        assert!(with.cost < without.cost);
        assert!(with.used_indexes.contains(&f.idx_key));
    }

    #[test]
    fn index_on_modified_column_slows_down_update() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let stmt = update_stmt(&f);
        let without = cost_update(&ctx, &stmt, &IndexSet::empty());
        let with = cost_update(&ctx, &stmt, &IndexSet::single(f.idx_payload));
        assert!(with.cost > without.cost, "maintenance must cost something");
        assert!(with.used_indexes.contains(&f.idx_payload));
    }

    #[test]
    fn unrelated_index_does_not_change_update_cost() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        // An index on the predicate column but a statement that modifies it —
        // build a separate index on l_tax only and a statement touching l_price.
        let stmt = UpdateStmt {
            table: f.table,
            set_columns: vec![f.key],
            predicates: vec![Predicate {
                table: f.table,
                column: f.payload,
                kind: PredicateKind::Equality,
                selectivity: 0.1,
            }],
            referenced_columns: vec![f.payload],
        };
        // idx_payload is on l_tax: helps locate, not maintained (l_tax not modified).
        let base = cost_update(&ctx, &stmt, &IndexSet::empty());
        let with = cost_update(&ctx, &stmt, &IndexSet::single(f.idx_payload));
        // It can only help or stay equal, never hurt.
        assert!(with.cost <= base.cost + 1e-9);
    }

    #[test]
    fn delete_maintains_all_indexes() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let stmt = DeleteStmt {
            table: f.table,
            predicates: vec![Predicate {
                table: f.table,
                column: f.key,
                kind: PredicateKind::Range,
                selectivity: 1e-5,
            }],
            referenced_columns: vec![f.key],
        };
        let one = cost_delete(&ctx, &stmt, &IndexSet::single(f.idx_key));
        let two = cost_delete(
            &ctx,
            &stmt,
            &IndexSet::from_iter([f.idx_key, f.idx_payload]),
        );
        assert!(two.cost > one.cost);
        assert_eq!(two.used_indexes.len(), 2);
    }

    #[test]
    fn insert_cost_scales_with_rows_and_indexes() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let small = InsertStmt {
            table: f.table,
            row_count: 1.0,
        };
        let big = InsertStmt {
            table: f.table,
            row_count: 100.0,
        };
        let c1 = cost_insert(&ctx, &small, &IndexSet::empty());
        let c2 = cost_insert(&ctx, &big, &IndexSet::empty());
        assert!(c2.cost > c1.cost);
        let c3 = cost_insert(&ctx, &big, &IndexSet::from_iter([f.idx_key, f.idx_payload]));
        assert!(c3.cost > c2.cost);
        assert_eq!(c3.used_indexes.len(), 2);
    }

    #[test]
    fn affected_rows_bounded_by_table_size() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let stmt = UpdateStmt {
            table: f.table,
            set_columns: vec![f.payload],
            predicates: vec![],
            referenced_columns: vec![],
        };
        let plan = cost_update(&ctx, &stmt, &IndexSet::empty());
        assert!(plan.affected_rows <= 6_000_000.0);
    }
}
