//! Multi-table join planning and costing for `SELECT` statements.
//!
//! The planner uses a deterministic greedy join-order heuristic (smallest
//! intermediate result first) and considers two join methods per step: hash
//! join and index-nested-loop join.  Index-nested-loop joins are what makes an
//! index on a join column valuable, which in turn produces the cross-query
//! benefit patterns the index-tuning benchmark relies on.

use super::access::{best_access_path, ProbeConstraint, TableAccessPlan};
use super::CostContext;
use crate::index::{IndexId, IndexSet};
use crate::query::SelectStmt;
use crate::types::{ColumnId, TableId};

/// Outcome of planning a `SELECT`.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// Estimated total cost.
    pub cost: f64,
    /// Estimated output cardinality.
    pub output_rows: f64,
    /// All indices used anywhere in the plan.
    pub used_indexes: Vec<IndexId>,
    /// Textual description of the join order and access paths.
    pub description: String,
}

/// Plan and cost a `SELECT` statement under a hypothetical configuration.
pub fn cost_select(ctx: &CostContext<'_>, stmt: &SelectStmt, config: &IndexSet) -> SelectPlan {
    let mut description = Vec::new();
    let mut used = Vec::new();

    // Per-table context.
    let per_table: Vec<TableContext> = stmt
        .tables
        .iter()
        .map(|&t| table_context(ctx, stmt, t, config))
        .collect();

    if per_table.is_empty() {
        return SelectPlan {
            cost: 0.0,
            output_rows: 0.0,
            used_indexes: Vec::new(),
            description: "EmptyPlan".into(),
        };
    }

    // Single-table fast path.
    if per_table.len() == 1 {
        let t = &per_table[0];
        let mut cost = t.base_plan.cost;
        let mut rows = t.base_plan.output_rows;
        if !stmt.order_by.is_empty() && !t.base_plan.provides_order {
            cost += ctx.sort_cost(rows);
        }
        if !stmt.group_by.is_empty() {
            cost += rows * ctx.config.hash_row_cost;
            rows = grouped_rows(ctx, rows, &stmt.group_by);
        }
        used.extend(t.base_plan.used_indexes.iter().copied());
        description.push(t.base_plan.description.clone());
        return SelectPlan {
            cost,
            output_rows: rows,
            used_indexes: dedup(used),
            description: description.join(" -> "),
        };
    }

    // Greedy join ordering: start from the table with the smallest filtered
    // cardinality, then repeatedly add the cheapest join step.
    let mut remaining: Vec<usize> = (0..per_table.len()).collect();
    let start = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| {
            per_table[a]
                .base_plan
                .output_rows
                .partial_cmp(&per_table[b].base_plan.output_rows)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty");
    remaining.retain(|&i| i != start);

    let mut total_cost = per_table[start].base_plan.cost;
    let mut current_rows = per_table[start].base_plan.output_rows;
    let mut joined_tables = vec![per_table[start].table];
    used.extend(per_table[start].base_plan.used_indexes.iter().copied());
    description.push(per_table[start].base_plan.description.clone());

    while !remaining.is_empty() {
        // Candidate next tables: prefer ones connected by a join predicate.
        let mut best_choice: Option<(usize, JoinStep)> = None;
        for &cand in &remaining {
            let tc = &per_table[cand];
            let step = plan_join_step(ctx, stmt, &joined_tables, current_rows, tc, config);
            let better = match &best_choice {
                None => true,
                Some((_, best_step)) => {
                    // Connected joins beat cross products; then lowest cost.
                    (step.connected, -step.cost) > (best_step.connected, -best_step.cost)
                }
            };
            if better {
                best_choice = Some((cand, step));
            }
        }
        let (chosen, step) = best_choice.expect("remaining non-empty");
        total_cost += step.cost;
        current_rows = step.output_rows;
        used.extend(step.used_indexes.iter().copied());
        description.push(step.description);
        joined_tables.push(per_table[chosen].table);
        remaining.retain(|&i| i != chosen);
    }

    if !stmt.order_by.is_empty() {
        total_cost += ctx.sort_cost(current_rows);
    }
    if !stmt.group_by.is_empty() {
        total_cost += current_rows * ctx.config.hash_row_cost;
        current_rows = grouped_rows(ctx, current_rows, &stmt.group_by);
    }

    SelectPlan {
        cost: total_cost,
        output_rows: current_rows,
        used_indexes: dedup(used),
        description: description.join(" -> "),
    }
}

struct TableContext {
    table: TableId,
    base_plan: TableAccessPlan,
    predicates_sel: f64,
    rows: f64,
}

fn table_context(
    ctx: &CostContext<'_>,
    stmt: &SelectStmt,
    table: TableId,
    config: &IndexSet,
) -> TableContext {
    let preds: Vec<&crate::query::Predicate> = stmt
        .predicates
        .iter()
        .filter(|p| p.table == table)
        .collect();
    let required: Vec<ColumnId> = stmt
        .referenced_columns
        .iter()
        .copied()
        .filter(|c| ctx.catalog.column(*c).table == table)
        .collect();
    let available: Vec<IndexId> = ctx
        .registry
        .indexes_on(table)
        .iter()
        .copied()
        .filter(|i| config.contains(*i))
        .collect();
    let desired_order: Vec<ColumnId> = stmt
        .order_by
        .iter()
        .copied()
        .take_while(|c| ctx.catalog.column(*c).table == table)
        .collect();
    let base_plan = best_access_path(
        ctx,
        table,
        &preds,
        &required,
        &available,
        &desired_order,
        None,
    );
    let predicates_sel = preds.iter().map(|p| p.selectivity).product::<f64>();
    TableContext {
        table,
        base_plan,
        predicates_sel,
        rows: ctx.catalog.table(table).row_count,
    }
}

struct JoinStep {
    cost: f64,
    output_rows: f64,
    used_indexes: Vec<IndexId>,
    description: String,
    connected: bool,
}

fn plan_join_step(
    ctx: &CostContext<'_>,
    stmt: &SelectStmt,
    joined_tables: &[TableId],
    outer_rows: f64,
    inner: &TableContext,
    config: &IndexSet,
) -> JoinStep {
    // Find a join predicate connecting the joined set to the inner table.
    let connecting = stmt.joins.iter().find(|j| {
        (joined_tables.contains(&j.left_table) && j.right_table == inner.table)
            || (joined_tables.contains(&j.right_table) && j.left_table == inner.table)
    });

    let inner_meta = ctx.catalog.table(inner.table);

    match connecting {
        None => {
            // Cross product via hash join of the base plans.
            let cost = inner.base_plan.cost
                + inner.base_plan.output_rows * ctx.config.hash_row_cost
                + outer_rows * ctx.config.hash_row_cost;
            JoinStep {
                cost,
                output_rows: (outer_rows * inner.base_plan.output_rows).max(1.0),
                used_indexes: inner.base_plan.used_indexes.clone(),
                description: format!("CrossHashJoin[{}]", inner.base_plan.description),
                connected: false,
            }
        }
        Some(join) => {
            let inner_col = join
                .column_for(inner.table)
                .expect("join touches inner table");
            let inner_col_meta = ctx.catalog.column(inner_col);
            let join_sel = 1.0 / inner_col_meta.distinct_values.max(1.0);
            let output_rows = (outer_rows * inner.rows * inner.predicates_sel * join_sel).max(1.0);

            // Option 1: hash join over the inner base plan.
            let hash_cost = inner.base_plan.cost
                + inner.base_plan.output_rows * ctx.config.hash_row_cost
                + outer_rows * ctx.config.hash_row_cost;

            // Option 2: index nested loop — probe the inner table once per
            // outer row using an index whose leading column is the join column.
            let preds: Vec<&crate::query::Predicate> = stmt
                .predicates
                .iter()
                .filter(|p| p.table == inner.table)
                .collect();
            let required: Vec<ColumnId> = stmt
                .referenced_columns
                .iter()
                .copied()
                .filter(|c| ctx.catalog.column(*c).table == inner.table)
                .collect();
            let available: Vec<IndexId> = ctx
                .registry
                .indexes_on(inner.table)
                .iter()
                .copied()
                .filter(|i| config.contains(*i))
                .filter(|i| ctx.registry.def(*i).key_columns.first() == Some(&inner_col))
                .collect();

            let mut best = JoinStep {
                cost: hash_cost,
                output_rows,
                used_indexes: inner.base_plan.used_indexes.clone(),
                description: format!("HashJoin[{}]", inner.base_plan.description),
                connected: true,
            };

            if !available.is_empty() && outer_rows < inner_meta.row_count {
                let probe = ProbeConstraint {
                    column: inner_col,
                    selectivity: join_sel,
                };
                let probe_plan = best_access_path(
                    ctx,
                    inner.table,
                    &preds,
                    &required,
                    &available,
                    &[],
                    Some(probe),
                );
                // Pay the probe once per outer row, but cap the descent
                // amortization: repeated probes hit cached upper levels, so we
                // charge full cost for the first probes and a discounted cost
                // afterwards.
                let per_probe = probe_plan.cost;
                let inlj_cost = outer_rows.min(1e7) * per_probe * 0.5 + per_probe;
                if inlj_cost < best.cost && !probe_plan.used_indexes.is_empty() {
                    best = JoinStep {
                        cost: inlj_cost,
                        output_rows,
                        used_indexes: probe_plan.used_indexes.clone(),
                        description: format!("IndexNLJoin[{}]", probe_plan.description),
                        connected: true,
                    };
                }
            }
            best
        }
    }
}

fn grouped_rows(ctx: &CostContext<'_>, rows: f64, group_by: &[ColumnId]) -> f64 {
    let groups: f64 = group_by
        .iter()
        .map(|c| ctx.catalog.column(*c).distinct_values)
        .product();
    rows.min(groups.max(1.0))
}

fn dedup(mut v: Vec<IndexId>) -> Vec<IndexId> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogBuilder};
    use crate::cost::CostModelConfig;
    use crate::index::IndexRegistry;
    use crate::query::{build, PredicateKind};
    use crate::types::DataType;

    struct Fixture {
        catalog: Catalog,
        registry: IndexRegistry,
        config: CostModelConfig,
        orders: TableId,
        lineitem: TableId,
        o_orderkey: ColumnId,
        o_custkey: ColumnId,
        l_orderkey: ColumnId,
        l_price: ColumnId,
        idx_l_orderkey: IndexId,
        idx_o_custkey: IndexId,
    }

    fn fixture() -> Fixture {
        let mut b = CatalogBuilder::new();
        b.table("orders")
            .rows(1_500_000.0)
            .column("o_orderkey", DataType::Integer, 1_500_000.0)
            .column("o_custkey", DataType::Integer, 100_000.0)
            .finish();
        b.table("lineitem")
            .rows(6_000_000.0)
            .column("l_orderkey", DataType::Integer, 1_500_000.0)
            .column_with_range("l_price", DataType::Decimal, 900_000.0, 900.0, 105_000.0)
            .finish();
        let catalog = b.build();
        let orders = catalog.table_by_name("orders").unwrap();
        let lineitem = catalog.table_by_name("lineitem").unwrap();
        let o_orderkey = catalog.column_by_name("o_orderkey", &[]).unwrap();
        let o_custkey = catalog.column_by_name("o_custkey", &[]).unwrap();
        let l_orderkey = catalog.column_by_name("l_orderkey", &[]).unwrap();
        let l_price = catalog.column_by_name("l_price", &[]).unwrap();
        let mut registry = IndexRegistry::new();
        let idx_l_orderkey = registry.intern(lineitem, vec![l_orderkey]);
        let idx_o_custkey = registry.intern(orders, vec![o_custkey]);
        Fixture {
            catalog,
            registry,
            config: CostModelConfig::default(),
            orders,
            lineitem,
            o_orderkey,
            o_custkey,
            l_orderkey,
            l_price,
            idx_l_orderkey,
            idx_o_custkey,
        }
    }

    fn join_query(f: &Fixture) -> SelectStmt {
        let stmt = build::select()
            .table(f.orders)
            .table(f.lineitem)
            .predicate(f.orders, f.o_custkey, PredicateKind::Equality, 1e-5)
            .join(f.orders, f.o_orderkey, f.lineitem, f.l_orderkey)
            .output(f.l_price)
            .build();
        match stmt.kind {
            crate::query::StatementKind::Select(s) => s,
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_column_index_reduces_cost() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let q = join_query(&f);
        let without = cost_select(&ctx, &q, &IndexSet::empty());
        let with = cost_select(&ctx, &q, &IndexSet::single(f.idx_l_orderkey));
        assert!(
            with.cost < without.cost,
            "{} vs {}",
            with.cost,
            without.cost
        );
        assert!(with.used_indexes.contains(&f.idx_l_orderkey));
        assert!(with.description.contains("IndexNLJoin"));
    }

    #[test]
    fn selection_index_on_outer_also_helps() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let q = join_query(&f);
        let base = cost_select(&ctx, &q, &IndexSet::empty());
        let with = cost_select(&ctx, &q, &IndexSet::single(f.idx_o_custkey));
        assert!(with.cost < base.cost);
    }

    #[test]
    fn both_indexes_cheapest() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let q = join_query(&f);
        let a = cost_select(&ctx, &q, &IndexSet::single(f.idx_o_custkey));
        let b = cost_select(&ctx, &q, &IndexSet::single(f.idx_l_orderkey));
        let both = cost_select(
            &ctx,
            &q,
            &IndexSet::from_iter([f.idx_o_custkey, f.idx_l_orderkey]),
        );
        assert!(both.cost <= a.cost + 1e-9);
        assert!(both.cost <= b.cost + 1e-9);
    }

    #[test]
    fn single_table_query_with_order_by_pays_sort_without_index() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let stmt = build::select()
            .table(f.lineitem)
            .predicate(f.lineitem, f.l_price, PredicateKind::Range, 0.2)
            .order_by(f.l_orderkey)
            .build();
        let q = match stmt.kind {
            crate::query::StatementKind::Select(s) => s,
            _ => unreachable!(),
        };
        let unsorted_available = cost_select(&ctx, &q, &IndexSet::empty());
        let with_order_index = cost_select(&ctx, &q, &IndexSet::single(f.idx_l_orderkey));
        // With the ordering index the sort can be skipped; since the predicate
        // is unselective the index path may still lose overall, but the plan
        // must never be worse than without the index.
        assert!(with_order_index.cost <= unsorted_available.cost + 1e-9);
    }

    #[test]
    fn cross_product_without_join_predicate_still_plans() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let stmt = build::select()
            .table(f.orders)
            .table(f.lineitem)
            .predicate(f.orders, f.o_custkey, PredicateKind::Equality, 1e-5)
            .predicate(f.lineitem, f.l_price, PredicateKind::Range, 1e-4)
            .build();
        let q = match stmt.kind {
            crate::query::StatementKind::Select(s) => s,
            _ => unreachable!(),
        };
        let plan = cost_select(&ctx, &q, &IndexSet::empty());
        assert!(plan.cost.is_finite() && plan.cost > 0.0);
        assert!(plan.description.contains("CrossHashJoin"));
    }

    #[test]
    fn more_indexes_never_hurt_select_cost() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let q = join_query(&f);
        let configs = [
            IndexSet::empty(),
            IndexSet::single(f.idx_l_orderkey),
            IndexSet::single(f.idx_o_custkey),
            IndexSet::from_iter([f.idx_l_orderkey, f.idx_o_custkey]),
        ];
        for small in &configs {
            for large in &configs {
                if small.is_subset_of(large) {
                    let cs = cost_select(&ctx, &q, small).cost;
                    let cl = cost_select(&ctx, &q, large).cost;
                    assert!(cl <= cs + 1e-9, "{small} {large}");
                }
            }
        }
    }

    #[test]
    fn group_by_caps_output_rows() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let mut q = join_query(&f);
        q.group_by = vec![f.o_custkey];
        let plan = cost_select(&ctx, &q, &IndexSet::empty());
        assert!(plan.output_rows <= 100_000.0 + 1.0);
    }

    #[test]
    fn used_indexes_always_in_config() {
        let f = fixture();
        let ctx = CostContext::new(&f.catalog, &f.registry, &f.config);
        let q = join_query(&f);
        let config = IndexSet::single(f.idx_l_orderkey);
        let plan = cost_select(&ctx, &q, &config);
        for u in &plan.used_indexes {
            assert!(config.contains(*u));
        }
    }
}
