//! The plan cost model.
//!
//! Costs are expressed in abstract "page units": a sequential page read costs
//! 1.0 and everything else is scaled relative to that, following the classic
//! System-R conventions also used by PostgreSQL's planner.  The absolute
//! numbers are irrelevant to the index-tuning algorithms — what matters is
//! that the model reacts to hypothetical indices the way a real optimizer
//! does:
//!
//! * selective predicates make index scans much cheaper than sequential scans,
//!   unselective ones make them more expensive (random I/O);
//! * covering indexes avoid heap fetches entirely;
//! * two indexes on the same table can be *intersected*, making their benefits
//!   interdependent (the paper's canonical example of an index interaction);
//! * join columns with an index enable index-nested-loop joins;
//! * update statements pay a maintenance penalty for every index on the
//!   modified table that contains a modified column.

pub mod access;
pub mod join;
pub mod update;

use crate::catalog::Catalog;
use crate::index::IndexRegistry;
use serde::{Deserialize, Serialize};

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModelConfig {
    /// Cost of reading one page sequentially.
    pub seq_page_cost: f64,
    /// Cost of reading one page at a random position.
    pub random_page_cost: f64,
    /// CPU cost of processing one heap tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of evaluating one operator / predicate on one row.
    pub cpu_operator_cost: f64,
    /// CPU cost per row of building or probing a hash table.
    pub hash_row_cost: f64,
    /// CPU cost per comparison while sorting.
    pub sort_row_cost: f64,
    /// Base cost of writing one modified heap row.
    pub write_row_cost: f64,
    /// Cost of maintaining one index entry for one modified row.
    pub index_maintenance_row_cost: f64,
    /// Discount factor applied to heap fetches from an index scan to model
    /// partial clustering / buffer-pool hits.
    pub fetch_discount: f64,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        Self {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            hash_row_cost: 0.015,
            sort_row_cost: 0.01,
            write_row_cost: 1.0,
            index_maintenance_row_cost: 2.0,
            fetch_discount: 0.5,
        }
    }
}

/// Read-only bundle of everything the costing functions need.
pub struct CostContext<'a> {
    /// Schema and statistics.
    pub catalog: &'a Catalog,
    /// Index definitions.
    pub registry: &'a IndexRegistry,
    /// Cost constants.
    pub config: &'a CostModelConfig,
}

impl<'a> CostContext<'a> {
    /// Create a costing context.
    pub fn new(
        catalog: &'a Catalog,
        registry: &'a IndexRegistry,
        config: &'a CostModelConfig,
    ) -> Self {
        Self {
            catalog,
            registry,
            config,
        }
    }

    /// Cardenas/Yao approximation of the number of distinct pages touched when
    /// fetching `rows` random rows from a table of `pages` pages.
    pub fn pages_fetched(&self, rows: f64, pages: f64) -> f64 {
        if pages <= 0.0 || rows <= 0.0 {
            return 0.0;
        }
        pages * (1.0 - (-rows / pages).exp())
    }

    /// Cost of sorting `rows` rows.
    pub fn sort_cost(&self, rows: f64) -> f64 {
        if rows <= 1.0 {
            return 0.0;
        }
        rows * rows.log2().max(1.0) * self.config.sort_row_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;
    use crate::types::DataType;

    #[test]
    fn pages_fetched_is_bounded_by_pages_and_rows() {
        let mut b = CatalogBuilder::new();
        b.table("t")
            .rows(100.0)
            .column("a", DataType::Integer, 10.0)
            .finish();
        let catalog = b.build();
        let registry = IndexRegistry::new();
        let config = CostModelConfig::default();
        let ctx = CostContext::new(&catalog, &registry, &config);

        // Fetching few rows from many pages touches about that many pages.
        let few = ctx.pages_fetched(10.0, 10_000.0);
        assert!(few > 9.0 && few <= 10.0);
        // Fetching many rows cannot touch more pages than exist.
        let many = ctx.pages_fetched(1_000_000.0, 50.0);
        assert!(many <= 50.0 && many > 49.0);
        // Degenerate inputs.
        assert_eq!(ctx.pages_fetched(0.0, 100.0), 0.0);
        assert_eq!(ctx.pages_fetched(10.0, 0.0), 0.0);
    }

    #[test]
    fn sort_cost_grows_superlinearly() {
        let catalog = Catalog::default();
        let registry = IndexRegistry::new();
        let config = CostModelConfig::default();
        let ctx = CostContext::new(&catalog, &registry, &config);
        let small = ctx.sort_cost(1_000.0);
        let large = ctx.sort_cost(10_000.0);
        assert!(large > 10.0 * small);
        assert_eq!(ctx.sort_cost(1.0), 0.0);
    }

    #[test]
    fn default_config_orders_io_costs_sensibly() {
        let c = CostModelConfig::default();
        assert!(c.random_page_cost > c.seq_page_cost);
        assert!(c.cpu_tuple_cost < c.seq_page_cost);
        assert!(c.index_maintenance_row_cost > c.write_row_cost);
    }
}
