//! `extractIndices(q)` — candidate-index extraction from a statement.
//!
//! The paper assumes this primitive is provided by the DBMS ("this function
//! may be already provided by the database system (e.g., as with IBM DB2), or
//! it can be implemented externally [1, 5]").  Our implementation follows the
//! standard external recipe: for every table referenced by the statement,
//! generate indices on
//!
//! * each individual equality / range / join / order-by column ("singletons"),
//! * the equality columns followed by one range column (multi-column
//!   "merged" candidates),
//! * the join column followed by the equality columns (to support
//!   index-nested-loop joins with extra filtering).
//!
//! The number of candidates per statement is capped to keep the candidate
//! pool manageable; WFIT's own `topIndices` step does the real pruning.

use crate::catalog::Catalog;
use crate::index::{IndexId, IndexRegistry};
use crate::query::{PredicateKind, Statement, StatementKind};
use crate::types::{ColumnId, TableId};

/// Maximum number of candidate indices generated per table per statement.
pub const MAX_CANDIDATES_PER_TABLE: usize = 8;

/// Extract candidate indices for a statement, interning them in `registry`.
///
/// Returns the candidate ids (existing ids are returned for candidates that
/// were already known).
pub fn extract_indices(
    stmt: &Statement,
    _catalog: &Catalog,
    registry: &mut IndexRegistry,
) -> Vec<IndexId> {
    let mut out = Vec::new();
    for table in stmt.tables() {
        let cols = relevant_columns(stmt, table);
        if cols.eq_columns.is_empty()
            && cols.range_columns.is_empty()
            && cols.join_columns.is_empty()
            && cols.order_columns.is_empty()
        {
            continue;
        }
        let mut per_table = Vec::new();

        // Singletons.
        for &c in cols
            .eq_columns
            .iter()
            .chain(&cols.range_columns)
            .chain(&cols.join_columns)
            .chain(&cols.order_columns)
        {
            per_table.push(vec![c]);
        }

        // Equality prefix + one range column.
        if !cols.eq_columns.is_empty() {
            for &r in &cols.range_columns {
                let mut key = cols.eq_columns.clone();
                key.push(r);
                per_table.push(key);
            }
            if cols.range_columns.is_empty() && cols.eq_columns.len() > 1 {
                per_table.push(cols.eq_columns.clone());
            }
        }

        // Join column + equality columns (for filtered index-nested-loop probes).
        for &j in &cols.join_columns {
            if !cols.eq_columns.is_empty() {
                let mut key = vec![j];
                key.extend(cols.eq_columns.iter().copied().filter(|c| *c != j));
                per_table.push(key);
            }
        }

        // Order-by prefix combined with the most selective equality column.
        if !cols.order_columns.is_empty() && !cols.eq_columns.is_empty() {
            let lead = cols.eq_columns[0];
            let mut key = vec![lead];
            key.extend(cols.order_columns.iter().copied().filter(|c| *c != lead));
            per_table.push(key);
        }

        // Dedup while preserving order, cap, and intern.
        let mut seen: Vec<Vec<ColumnId>> = Vec::new();
        for key in per_table {
            if key.is_empty() || seen.contains(&key) {
                continue;
            }
            seen.push(key.clone());
            if seen.len() > MAX_CANDIDATES_PER_TABLE {
                break;
            }
            let id = registry.intern(table, key);
            if !out.contains(&id) {
                out.push(id);
            }
        }
    }
    out
}

struct RelevantColumns {
    eq_columns: Vec<ColumnId>,
    range_columns: Vec<ColumnId>,
    join_columns: Vec<ColumnId>,
    order_columns: Vec<ColumnId>,
}

fn relevant_columns(stmt: &Statement, table: TableId) -> RelevantColumns {
    let mut eq_columns = Vec::new();
    let mut range_columns = Vec::new();
    let mut join_columns = Vec::new();
    let mut order_columns = Vec::new();

    for p in stmt.predicates().iter().filter(|p| p.table == table) {
        match p.kind {
            PredicateKind::Equality => push_unique(&mut eq_columns, p.column),
            PredicateKind::Range | PredicateKind::Like => push_unique(&mut range_columns, p.column),
            PredicateKind::NotEqual => {}
        }
    }
    for j in stmt.joins() {
        if let Some(c) = j.column_for(table) {
            push_unique(&mut join_columns, c);
        }
    }
    if let StatementKind::Select(sel) = &stmt.kind {
        for &c in &sel.order_by {
            push_unique(&mut order_columns, c);
        }
        for &c in &sel.group_by {
            push_unique(&mut order_columns, c);
        }
    }
    // Keep only columns belonging to this table in order/group lists.
    RelevantColumns {
        eq_columns,
        range_columns,
        join_columns,
        order_columns,
    }
}

fn push_unique(v: &mut Vec<ColumnId>, c: ColumnId) {
    if !v.contains(&c) {
        v.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;
    use crate::query::build;
    use crate::types::DataType;

    fn setup() -> (Catalog, IndexRegistry) {
        let mut b = CatalogBuilder::new();
        b.table("orders")
            .rows(1_000_000.0)
            .column("o_orderkey", DataType::Integer, 1_000_000.0)
            .column("o_custkey", DataType::Integer, 100_000.0)
            .column("o_date", DataType::Date, 2_400.0)
            .finish();
        b.table("lineitem")
            .rows(6_000_000.0)
            .column("l_orderkey", DataType::Integer, 1_000_000.0)
            .column("l_price", DataType::Decimal, 900_000.0)
            .finish();
        (b.build(), IndexRegistry::new())
    }

    #[test]
    fn extracts_singletons_and_composites() {
        let (catalog, mut registry) = setup();
        let orders = catalog.table_by_name("orders").unwrap();
        let o_custkey = catalog.column_by_name("o_custkey", &[]).unwrap();
        let o_date = catalog.column_by_name("o_date", &[]).unwrap();
        let stmt = build::select()
            .table(orders)
            .predicate(orders, o_custkey, PredicateKind::Equality, 1e-5)
            .predicate(orders, o_date, PredicateKind::Range, 0.05)
            .build();
        let cands = extract_indices(&stmt, &catalog, &mut registry);
        assert!(cands.len() >= 3, "{cands:?}");
        // Composite (o_custkey, o_date) must be among them.
        assert!(registry.lookup(orders, &[o_custkey, o_date]).is_some());
    }

    #[test]
    fn extracts_join_column_candidates_on_both_sides() {
        let (catalog, mut registry) = setup();
        let orders = catalog.table_by_name("orders").unwrap();
        let lineitem = catalog.table_by_name("lineitem").unwrap();
        let o_orderkey = catalog.column_by_name("o_orderkey", &[]).unwrap();
        let l_orderkey = catalog.column_by_name("l_orderkey", &[]).unwrap();
        let stmt = build::select()
            .table(orders)
            .table(lineitem)
            .join(orders, o_orderkey, lineitem, l_orderkey)
            .build();
        let _ = extract_indices(&stmt, &catalog, &mut registry);
        assert!(registry.lookup(orders, &[o_orderkey]).is_some());
        assert!(registry.lookup(lineitem, &[l_orderkey]).is_some());
    }

    #[test]
    fn repeated_extraction_is_idempotent() {
        let (catalog, mut registry) = setup();
        let orders = catalog.table_by_name("orders").unwrap();
        let o_custkey = catalog.column_by_name("o_custkey", &[]).unwrap();
        let stmt = build::select()
            .table(orders)
            .predicate(orders, o_custkey, PredicateKind::Equality, 1e-5)
            .build();
        let first = extract_indices(&stmt, &catalog, &mut registry);
        let count = registry.len();
        let second = extract_indices(&stmt, &catalog, &mut registry);
        assert_eq!(first, second);
        assert_eq!(registry.len(), count);
    }

    #[test]
    fn update_statements_yield_candidates_for_row_location() {
        let (catalog, mut registry) = setup();
        let lineitem = catalog.table_by_name("lineitem").unwrap();
        let l_price = catalog.column_by_name("l_price", &[]).unwrap();
        let l_orderkey = catalog.column_by_name("l_orderkey", &[]).unwrap();
        let stmt = build::update(
            lineitem,
            vec![l_orderkey],
            vec![crate::query::Predicate {
                table: lineitem,
                column: l_price,
                kind: PredicateKind::Range,
                selectivity: 1e-4,
            }],
        );
        let cands = extract_indices(&stmt, &catalog, &mut registry);
        assert!(!cands.is_empty());
        assert!(registry.lookup(lineitem, &[l_price]).is_some());
    }

    #[test]
    fn statement_without_predicates_yields_nothing() {
        let (catalog, mut registry) = setup();
        let orders = catalog.table_by_name("orders").unwrap();
        let stmt = build::select().table(orders).build();
        let cands = extract_indices(&stmt, &catalog, &mut registry);
        assert!(cands.is_empty());
        assert!(registry.is_empty());
    }

    #[test]
    fn candidate_count_is_capped() {
        let (catalog, mut registry) = setup();
        let orders = catalog.table_by_name("orders").unwrap();
        let cols: Vec<ColumnId> = catalog.table(orders).columns.clone();
        let mut builder = build::select().table(orders);
        for c in &cols {
            builder = builder.predicate(orders, *c, PredicateKind::Equality, 0.01);
        }
        for c in &cols {
            builder = builder.predicate(orders, *c, PredicateKind::Range, 0.2);
        }
        let stmt = builder.build();
        let cands = extract_indices(&stmt, &catalog, &mut registry);
        assert!(cands.len() <= MAX_CANDIDATES_PER_TABLE + 1);
    }
}
