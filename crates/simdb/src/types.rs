//! Fundamental identifier and value types shared across the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a table in the catalog.
///
/// Table ids are dense (assigned sequentially by the [`crate::catalog::CatalogBuilder`]),
/// so they can be used to index per-table arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Identifier of a column.  Column ids are global (not per-table) and dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Logical data type of a column.
///
/// Only the storage width and comparison semantics matter to the cost model;
/// we keep the set small but sufficient for the TPC-style benchmark schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 8-byte integer.
    Integer,
    /// 8-byte floating point.
    Float,
    /// Fixed-point decimal (stored as 8 bytes in the simulator).
    Decimal,
    /// Variable-length character data.
    Text,
    /// Date / timestamp (stored as 8 bytes).
    Date,
}

impl DataType {
    /// Width in bytes used for row-size and index-size estimation.
    pub fn width(self) -> f64 {
        match self {
            DataType::Integer | DataType::Float | DataType::Decimal | DataType::Date => 8.0,
            DataType::Text => 24.0,
        }
    }

    /// Whether values of this type can be compared with `<`/`BETWEEN` using
    /// numeric interpolation for selectivity purposes.
    pub fn is_rangeable(self) -> bool {
        !matches!(self, DataType::Text)
    }
}

/// A literal value appearing in a SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal (also used for dates).
    Str(String),
    /// NULL literal.
    Null,
}

impl Value {
    /// Best-effort numeric interpretation of the value, used by the
    /// selectivity estimator for range predicates.
    ///
    /// Strings are interpreted by hashing their first characters into a stable
    /// position in `[0, 1e9)` so that ranges over date-like strings still get
    /// a deterministic (if crude) selectivity.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(s) => Some(string_to_numeric(s)),
            Value::Null => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// Map a string to a stable numeric position.
///
/// The mapping is monotone in the lexicographic order of the string (within a
/// common format), which is exactly what a range-selectivity estimator needs:
/// if `a < b` lexicographically then `string_to_numeric(a) <= string_to_numeric(b)`.
///
/// Strings that start with a digit (dates, timestamps, zero-padded keys) are
/// mapped by concatenating their first nine digits, which makes interpolation
/// over date ranges behave almost linearly.  Other strings fall back to a
/// byte-weighted positional encoding.
pub fn string_to_numeric(s: &str) -> f64 {
    if s.as_bytes().first().is_some_and(|b| b.is_ascii_digit()) {
        let mut acc = 0.0f64;
        let mut digits = 0usize;
        for byte in s.bytes() {
            if byte.is_ascii_digit() {
                acc = acc * 10.0 + (byte - b'0') as f64;
                digits += 1;
                if digits == 9 {
                    break;
                }
            }
        }
        // Left-justify so that short numeric prefixes compare correctly with
        // longer ones ("1995" vs "1995-05-12").
        while digits < 9 {
            acc *= 10.0;
            digits += 1;
        }
        return acc;
    }
    let mut acc = 0.0f64;
    let mut scale = 1.0f64;
    for byte in s.bytes().take(8) {
        scale /= 256.0;
        acc += byte as f64 * scale;
    }
    acc * 1e9
}

/// Number of bytes in a page of storage.  All I/O costs are expressed in
/// page units.
pub const PAGE_SIZE: f64 = 8192.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_widths_positive() {
        for dt in [
            DataType::Integer,
            DataType::Float,
            DataType::Decimal,
            DataType::Text,
            DataType::Date,
        ] {
            assert!(dt.width() > 0.0);
        }
    }

    #[test]
    fn text_is_not_rangeable() {
        assert!(!DataType::Text.is_rangeable());
        assert!(DataType::Integer.is_rangeable());
        assert!(DataType::Date.is_rangeable());
    }

    #[test]
    fn value_numeric_conversions() {
        assert_eq!(Value::Int(42).as_numeric(), Some(42.0));
        assert_eq!(Value::Float(1.5).as_numeric(), Some(1.5));
        assert_eq!(Value::Null.as_numeric(), None);
        assert!(Value::Str("abc".into()).as_numeric().is_some());
    }

    #[test]
    fn string_to_numeric_is_monotone() {
        let a = string_to_numeric("1995-05-12");
        let b = string_to_numeric("2006-07-10");
        assert!(a < b, "{a} vs {b}");
        let c = string_to_numeric("aaa");
        let d = string_to_numeric("aab");
        assert!(c < d);
    }

    #[test]
    fn string_to_numeric_bounded() {
        for s in ["", "z", "zzzzzzzzzzzz", "1812-08-05-03.21.02"] {
            let v = string_to_numeric(s);
            assert!((0.0..=1e9).contains(&v));
        }
    }

    #[test]
    fn value_display_roundtrip_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Str("x".into()).to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TableId(1) < TableId(2));
        assert!(ColumnId(3) > ColumnId(1));
        assert_eq!(TableId(5).to_string(), "T5");
        assert_eq!(ColumnId(5).to_string(), "C5");
    }
}
