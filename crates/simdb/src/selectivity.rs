//! Predicate selectivity estimation.
//!
//! The estimator uses the textbook System-R style formulas driven by the
//! column statistics in the catalog: `1/distinct` for equalities, linear
//! interpolation over `[min, max]` for ranges, and fixed default fractions
//! when no information is available.  The absolute numbers do not need to be
//! accurate — the index-tuning algorithms only need a cost model that reacts
//! plausibly to predicates of different selectivity, which the benchmark
//! workload deliberately mixes.

use crate::catalog::ColumnMeta;
use crate::sql::ast::CompareOp;
use crate::types::Value;

/// Default selectivity used for equality predicates on columns with unknown
/// statistics.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.005;
/// Default selectivity used for range predicates that cannot be interpolated.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 0.33;
/// Default selectivity for `LIKE` predicates without a literal prefix.
pub const DEFAULT_LIKE_SELECTIVITY: f64 = 0.1;
/// Minimum selectivity returned by any estimator (avoids zero-cardinality
/// estimates that would make every plan free).
pub const MIN_SELECTIVITY: f64 = 1e-7;

fn clamp(s: f64) -> f64 {
    if s.is_finite() {
        s.clamp(MIN_SELECTIVITY, 1.0)
    } else {
        DEFAULT_RANGE_SELECTIVITY
    }
}

/// Selectivity of `col = literal`.
pub fn equality(column: &ColumnMeta) -> f64 {
    clamp(1.0 / column.distinct_values)
}

/// Selectivity of `col IN (v1 .. vk)`.
pub fn in_list(column: &ColumnMeta, list_len: usize) -> f64 {
    clamp(list_len as f64 / column.distinct_values)
}

/// Selectivity of `col <> literal`.
pub fn not_equal(column: &ColumnMeta) -> f64 {
    clamp(1.0 - equality(column))
}

/// Selectivity of a one-sided comparison `col op literal`.
pub fn comparison(column: &ColumnMeta, op: CompareOp, value: &Value) -> f64 {
    let span = column.max_value - column.min_value;
    let numeric = value.as_numeric();
    match (op, numeric) {
        (CompareOp::Eq, _) => equality(column),
        (CompareOp::Ne, _) => not_equal(column),
        (CompareOp::Lt | CompareOp::Le, Some(v)) if span > 0.0 => {
            clamp((v - column.min_value) / span)
        }
        (CompareOp::Gt | CompareOp::Ge, Some(v)) if span > 0.0 => {
            clamp((column.max_value - v) / span)
        }
        _ => DEFAULT_RANGE_SELECTIVITY,
    }
}

/// Selectivity of `col BETWEEN low AND high`.
pub fn between(column: &ColumnMeta, low: &Value, high: &Value) -> f64 {
    let span = column.max_value - column.min_value;
    match (low.as_numeric(), high.as_numeric()) {
        (Some(lo), Some(hi)) if span > 0.0 && hi >= lo => {
            // Clip the requested range to the column's domain before
            // interpolating, so out-of-domain constants do not inflate the
            // estimate.
            let lo_c = lo.max(column.min_value);
            let hi_c = hi.min(column.max_value);
            if hi_c <= lo_c {
                MIN_SELECTIVITY
            } else {
                clamp((hi_c - lo_c) / span)
            }
        }
        _ => DEFAULT_RANGE_SELECTIVITY,
    }
}

/// Selectivity of `col LIKE pattern`.
pub fn like(column: &ColumnMeta, pattern: &str) -> f64 {
    if let Some(prefix_len) = pattern.find(['%', '_']) {
        if prefix_len == 0 {
            DEFAULT_LIKE_SELECTIVITY
        } else {
            // A literal prefix of length k behaves roughly like an equality on
            // the first k characters; fall off geometrically with the length.
            clamp(
                0.25f64
                    .powi(prefix_len.min(4) as i32)
                    .max(1.0 / column.distinct_values),
            )
        }
    } else {
        // No wildcard: effectively an equality.
        equality(column)
    }
}

/// Combined selectivity of a conjunction, assuming independence.
pub fn conjunction(selectivities: impl IntoIterator<Item = f64>) -> f64 {
    clamp(selectivities.into_iter().product())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnId, DataType, TableId};

    fn col(distinct: f64, min: f64, max: f64) -> ColumnMeta {
        ColumnMeta {
            id: ColumnId(0),
            table: TableId(0),
            name: "c".into(),
            data_type: DataType::Integer,
            distinct_values: distinct,
            min_value: min,
            max_value: max,
            width: 8.0,
        }
    }

    #[test]
    fn equality_uses_distinct_count() {
        let c = col(1000.0, 0.0, 1000.0);
        assert!((equality(&c) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn in_list_scales_with_length() {
        let c = col(1000.0, 0.0, 1000.0);
        assert!((in_list(&c, 5) - 0.005).abs() < 1e-12);
        assert!(in_list(&c, 5000) <= 1.0);
    }

    #[test]
    fn between_interpolates_over_domain() {
        let c = col(100.0, 0.0, 100.0);
        let s = between(&c, &Value::Int(10), &Value::Int(30));
        assert!((s - 0.2).abs() < 1e-9, "{s}");
    }

    #[test]
    fn between_clips_to_domain() {
        let c = col(100.0, 0.0, 100.0);
        let s = between(&c, &Value::Int(-100), &Value::Int(200));
        assert!((s - 1.0).abs() < 1e-9);
        let s = between(&c, &Value::Int(500), &Value::Int(600));
        assert!(s <= MIN_SELECTIVITY * 10.0);
    }

    #[test]
    fn between_inverted_range_is_tiny() {
        let c = col(100.0, 0.0, 100.0);
        assert!(between(&c, &Value::Int(50), &Value::Int(10)) <= DEFAULT_RANGE_SELECTIVITY);
    }

    #[test]
    fn comparison_directions() {
        let c = col(100.0, 0.0, 100.0);
        let lt = comparison(&c, CompareOp::Lt, &Value::Int(25));
        let gt = comparison(&c, CompareOp::Gt, &Value::Int(25));
        assert!((lt - 0.25).abs() < 1e-9);
        assert!((gt - 0.75).abs() < 1e-9);
        assert!((lt + gt - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ne_is_complement_of_eq() {
        let c = col(100.0, 0.0, 100.0);
        assert!((not_equal(&c) + equality(&c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn like_prefix_more_selective_than_bare_wildcard() {
        let c = col(10_000.0, 0.0, 1.0);
        assert!(like(&c, "abc%") < like(&c, "%abc"));
        assert!((like(&c, "exact") - equality(&c)).abs() < 1e-12);
    }

    #[test]
    fn conjunction_multiplies_and_clamps() {
        let s = conjunction([0.5, 0.1]);
        assert!((s - 0.05).abs() < 1e-12);
        assert!(conjunction([1e-9, 1e-9]) >= MIN_SELECTIVITY * 0.1);
        assert_eq!(conjunction(std::iter::empty::<f64>()), 1.0);
    }

    #[test]
    fn everything_is_within_bounds() {
        let c = col(3.0, 0.0, 3.0);
        for s in [
            equality(&c),
            not_equal(&c),
            between(&c, &Value::Int(0), &Value::Int(3)),
            comparison(&c, CompareOp::Le, &Value::Int(1)),
            like(&c, "x%"),
            in_list(&c, 2),
        ] {
            assert!((MIN_SELECTIVITY..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn string_ranges_interpolate_via_numeric_mapping() {
        let c = ColumnMeta {
            data_type: DataType::Date,
            min_value: crate::types::string_to_numeric("1990-01-01"),
            max_value: crate::types::string_to_numeric("2010-01-01"),
            ..col(1000.0, 0.0, 1.0)
        };
        let s = between(
            &c,
            &Value::Str("1995-05-12".into()),
            &Value::Str("2006-07-10".into()),
        );
        assert!(s > 0.1 && s < 0.9, "{s}");
    }
}
