//! Structured run reports and golden-file comparison.
//!
//! A [`RunReport`] captures everything the paper's evaluation plots or
//! tabulates — total-work ratio vs. OPT at checkpoints, transition costs,
//! what-if calls, repartitions, recommendation churn — plus wall-clock
//! timing.  Reports serialize to JSON deterministically: the same scenario
//! replayed from the same seed renders byte-identical JSON (timing is kept
//! out of the deterministic rendering; use
//! [`RunReport::to_json_with_timing`] when wall-clock numbers are wanted,
//! e.g. for CI artifacts).

use crate::json::{diff_with_tolerance, Json};

/// Metrics of one (advisor × options) cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's label from the spec.
    pub label: String,
    /// The advisor's self-reported name.
    pub advisor: String,
    /// `totWork(A, Q_N, V)` over the whole workload.
    pub total_work: f64,
    /// Sum of per-statement query costs.
    pub query_cost: f64,
    /// Sum of configuration-transition costs.
    pub transition_cost: f64,
    /// Number of statements after which the adopted configuration changed
    /// (recommendation churn as experienced by the DBA).
    pub transitions: usize,
    /// `totWork(OPT) / totWork(A)` at the end of the workload (1.0 = optimal).
    pub opt_ratio: f64,
    /// The ratio at each checkpoint (the x/y series of the figures).
    pub ratio_series: Vec<(usize, f64)>,
    /// What-if optimizer calls issued by the advisor (0 where the advisor
    /// does not track them).
    pub whatif_calls: u64,
    /// Number of stable-partition rebuilds (WFIT AUTO only).
    pub repartitions: u64,
    /// Configurations tracked at the end (`Σ_k 2^|C_k|`; WFIT only).
    pub states_tracked: u64,
    /// Indices monitored by the advisor at the end of the run.
    pub monitored: usize,
    /// Size of the final adopted configuration.
    pub final_config_size: usize,
    /// Clamped cumulative regret against OPT at the end of the workload:
    /// `Σ_n max(0, step_n(A) − step_n(OPT))` (see
    /// `advisors::OptSchedule::regret_series`).  Monotone along the run and
    /// computed uniformly for every cell.
    pub regret: f64,
    /// Safety-gate fallbacks reported by the advisor (bandit cells only;
    /// 0 for advisors without a gate).
    pub safety_fallbacks: u64,
    /// Wall-clock time of the cell's run in milliseconds (excluded from the
    /// deterministic JSON rendering).
    pub wall_time_ms: f64,
}

impl CellReport {
    fn to_json(&self, with_timing: bool) -> Json {
        let mut fields = vec![
            ("label", Json::Str(self.label.clone())),
            ("advisor", Json::Str(self.advisor.clone())),
            ("total_work", Json::Num(self.total_work)),
            ("query_cost", Json::Num(self.query_cost)),
            ("transition_cost", Json::Num(self.transition_cost)),
            ("transitions", Json::Num(self.transitions as f64)),
            ("opt_ratio", Json::Num(self.opt_ratio)),
            (
                "ratio_series",
                Json::Arr(
                    self.ratio_series
                        .iter()
                        .map(|&(n, r)| Json::Arr(vec![Json::Num(n as f64), Json::Num(r)]))
                        .collect(),
                ),
            ),
            ("whatif_calls", Json::Num(self.whatif_calls as f64)),
            ("repartitions", Json::Num(self.repartitions as f64)),
            ("states_tracked", Json::Num(self.states_tracked as f64)),
            ("monitored", Json::Num(self.monitored as f64)),
            (
                "final_config_size",
                Json::Num(self.final_config_size as f64),
            ),
            ("regret", Json::Num(self.regret)),
            ("safety_fallbacks", Json::Num(self.safety_fallbacks as f64)),
        ];
        if with_timing {
            fields.push(("wall_time_ms", Json::Num(self.wall_time_ms)));
        }
        Json::obj(fields)
    }
}

/// Service-level metrics of a multi-tenant run (present only for scenarios
/// replayed through `crates/service`).
///
/// The event counts and cache counters are deterministic and belong to the
/// golden-file JSON; the throughput and latency numbers are wall-clock
/// derived and only appear in [`RunReport::to_json_with_timing`].
#[derive(Debug, Clone, Default)]
pub struct ServiceSummary {
    /// Number of tenants the service hosted.
    pub tenants: usize,
    /// Number of tuning sessions across all tenants.
    pub sessions: usize,
    /// Query events processed.
    pub query_events: u64,
    /// DBA-feedback (vote) events processed.
    pub vote_events: u64,
    /// What-if requests against the tenants' shared caches (summed).
    pub cache_requests: u64,
    /// Requests answered from a shared cache (summed).
    pub cache_hits: u64,
    /// `cache_hits / cache_requests` (0.0 when no request was made).
    pub cache_hit_rate: f64,
    /// Entries evicted to honor the shared caches' capacity bounds (summed;
    /// 0 for unbounded runs).
    pub cache_evictions: u64,
    /// Entries resident in the shared caches at the end of the run (summed).
    pub cache_entries: u64,
    /// Index benefit graphs built by the tenants' IBG stores (summed; 0 when
    /// IBG sharing is off — sessions then build their own graphs, which are
    /// not counted here).
    pub ibg_builds: u64,
    /// IBG requests answered with an already-built graph (summed).
    pub ibg_reuses: u64,
    /// Worker threads the service was configured with.
    pub workers: usize,
    /// Whether cross-tenant work-stealing was enabled.
    pub steal: bool,
    /// Session-runs scheduled across all drain rounds (deterministic: a
    /// pure function of the queue-depth snapshots).
    pub session_runs: u64,
    /// Session-runs executed away from their home worker by the steal pass
    /// (0 with stealing disabled).
    pub stolen_runs: u64,
    /// Largest per-tenant queue depth observed at any drain-round start.
    pub max_queue_depth: u64,
    /// Worst planned per-round load imbalance
    /// (`max_worker_load / ideal_load`; 1.0 = perfectly fair).
    pub load_imbalance: f64,
    /// Per-tenant ingress depth limit the run was admitted under (0 =
    /// unbounded, the historical default).
    pub per_tenant_depth: usize,
    /// Global ingress budget the run was admitted under (0 = unbounded).
    pub global_depth: usize,
    /// Total offered load: every submission attempt, admitted or rejected
    /// (`submitted + rejected` at the ingress).
    pub offered_events: u64,
    /// Queries displaced by vote admissions at full queues (admitted, then
    /// dropped before any drain saw them) — deterministic under the replay
    /// shape, golden-pinned by the overload scenario.
    pub shed_events: u64,
    /// Admissions that parked for capacity or went over budget (unsheddable
    /// votes with nothing to displace).
    pub deferred_events: u64,
    /// Sheddable submissions the admission gate turned away.
    pub rejected_submits: u64,
    /// High-water mark of the global pending count — the memory bound the
    /// admission gate enforced (≤ the caps except for deferred votes).
    pub peak_pending: u64,
    /// Whether the run was replayed with durable persistence (snapshot +
    /// WAL) attached.  Deterministic: a crash-and-restore run and the
    /// uninterrupted run render the same value.
    pub persist: bool,
    /// Drain rounds recorded in the event WAL by the end of the run (0 with
    /// persistence off).  Restore replays logged rounds and keeps appending
    /// to the same log, so this total is identical whether or not the run
    /// was interrupted — which is what lets it live in the golden files.
    pub wal_rounds: u64,
    /// ARC ghost-list hits across the tenants' shared caches (summed; 0 for
    /// CLOCK and unbounded caches) — the "evicted too early" signal the
    /// working-set controller feeds on.
    pub ghost_hits: u64,
    /// Summed live capacity of the tenants' bounded caches at the end of
    /// the run — under adaptation this is the controller's final verdict;
    /// static runs echo the configured capacities.
    pub capacity_final: u64,
    /// Epoch segments executed by the scheduler (0 with epochs off).
    pub epochs: u64,
    /// Mid-round re-plans (epoch segments beyond each round's first; 0 with
    /// epochs off).
    pub replans: u64,
    /// Events processed per wall-clock second (timing JSON only).
    pub events_per_sec: f64,
    /// Median per-event latency in microseconds (timing JSON only).
    pub latency_p50_us: u64,
    /// 99th-percentile per-event latency in microseconds (timing JSON only).
    pub latency_p99_us: u64,
    /// Per-tenant median latency in microseconds, indexed by tenant id
    /// (timing JSON only) — skewed workloads hide hot-tenant tail latency
    /// in the global percentile.
    pub tenant_latency_p50_us: Vec<u64>,
    /// Per-tenant 99th-percentile latency in microseconds, indexed by
    /// tenant id (timing JSON only).
    pub tenant_latency_p99_us: Vec<u64>,
}

impl ServiceSummary {
    fn to_json(&self, with_timing: bool) -> Json {
        let mut fields = vec![
            ("tenants", Json::Num(self.tenants as f64)),
            ("sessions", Json::Num(self.sessions as f64)),
            ("query_events", Json::Num(self.query_events as f64)),
            ("vote_events", Json::Num(self.vote_events as f64)),
            ("cache_requests", Json::Num(self.cache_requests as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_hit_rate", Json::Num(self.cache_hit_rate)),
            ("cache_evictions", Json::Num(self.cache_evictions as f64)),
            ("cache_entries", Json::Num(self.cache_entries as f64)),
            ("ibg_builds", Json::Num(self.ibg_builds as f64)),
            ("ibg_reuses", Json::Num(self.ibg_reuses as f64)),
            ("workers", Json::Num(self.workers as f64)),
            ("steal", Json::Bool(self.steal)),
            ("session_runs", Json::Num(self.session_runs as f64)),
            ("stolen_runs", Json::Num(self.stolen_runs as f64)),
            ("max_queue_depth", Json::Num(self.max_queue_depth as f64)),
            ("load_imbalance", Json::Num(self.load_imbalance)),
            ("per_tenant_depth", Json::Num(self.per_tenant_depth as f64)),
            ("global_depth", Json::Num(self.global_depth as f64)),
            ("offered_events", Json::Num(self.offered_events as f64)),
            ("shed_events", Json::Num(self.shed_events as f64)),
            ("deferred_events", Json::Num(self.deferred_events as f64)),
            ("rejected_submits", Json::Num(self.rejected_submits as f64)),
            ("peak_pending", Json::Num(self.peak_pending as f64)),
            ("persist", Json::Bool(self.persist)),
            ("wal_rounds", Json::Num(self.wal_rounds as f64)),
            ("ghost_hits", Json::Num(self.ghost_hits as f64)),
            ("capacity_final", Json::Num(self.capacity_final as f64)),
            ("epochs", Json::Num(self.epochs as f64)),
            ("replans", Json::Num(self.replans as f64)),
        ];
        if with_timing {
            let latencies = |samples: &[u64]| {
                Json::Arr(samples.iter().map(|&us| Json::Num(us as f64)).collect())
            };
            fields.push(("events_per_sec", Json::Num(self.events_per_sec)));
            fields.push(("latency_p50_us", Json::Num(self.latency_p50_us as f64)));
            fields.push(("latency_p99_us", Json::Num(self.latency_p99_us as f64)));
            fields.push((
                "tenant_latency_p50_us",
                latencies(&self.tenant_latency_p50_us),
            ));
            fields.push((
                "tenant_latency_p99_us",
                latencies(&self.tenant_latency_p99_us),
            ));
        }
        Json::obj(fields)
    }
}

/// The structured result of replaying one scenario.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Workload seed the scenario was replayed from.
    pub seed: u64,
    /// Number of statements in the workload.
    pub statements: usize,
    /// Size of the offline candidate set.
    pub candidates: usize,
    /// Number of parts in the offline stable partition.
    pub partition_parts: usize,
    /// Total work of the OPT oracle (the `OPT = 1` normalizer).  For
    /// multi-tenant service runs this is the **sum** of the per-tenant OPT
    /// totals; each cell's `opt_ratio` is still relative to its own tenant.
    pub opt_total: f64,
    /// Checkpoint positions shared by every cell's ratio series.
    pub checkpoints: Vec<usize>,
    /// One report per cell, in spec order.
    pub cells: Vec<CellReport>,
    /// Service-level metrics (multi-tenant runs only).
    pub service: Option<ServiceSummary>,
}

impl RunReport {
    /// Deterministic JSON rendering (timing excluded) — the golden-file
    /// format.  Identical seeds produce identical strings.
    ///
    /// Panics if a metric is non-finite: the JSON writer rejects NaN/Inf on
    /// the write path (silent placeholders would corrupt golden files), and
    /// a non-finite metric is always a harness bug worth failing loudly on.
    pub fn to_json(&self) -> String {
        self.json_value(false)
            .render()
            .expect("run report contains a non-finite metric")
    }

    /// JSON rendering including per-cell wall-clock timing (for CI
    /// artifacts and overhead studies; NOT stable across runs).
    pub fn to_json_with_timing(&self) -> String {
        self.json_value(true)
            .render()
            .expect("run report contains a non-finite metric")
    }

    fn json_value(&self, with_timing: bool) -> Json {
        let mut fields = vec![
            ("scenario", Json::Str(self.scenario.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("statements", Json::Num(self.statements as f64)),
            ("candidates", Json::Num(self.candidates as f64)),
            ("partition_parts", Json::Num(self.partition_parts as f64)),
            ("opt_total", Json::Num(self.opt_total)),
            (
                "checkpoints",
                Json::Arr(
                    self.checkpoints
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(|c| c.to_json(with_timing)).collect()),
            ),
        ];
        if let Some(service) = &self.service {
            fields.push(("service", service.to_json(with_timing)));
        }
        Json::obj(fields)
    }

    /// Find a cell by label.
    pub fn cell(&self, label: &str) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.label == label)
    }

    /// Compare this report against a golden JSON document within a relative
    /// numeric tolerance.  Returns the differences (empty = match).
    pub fn diff_against_golden(&self, golden: &str, rel_tol: f64) -> Result<Vec<String>, String> {
        let expected = Json::parse(golden).map_err(|e| format!("golden file: {e}"))?;
        let actual = Json::parse(&self.to_json()).expect("own rendering parses");
        Ok(diff_with_tolerance(&expected, &actual, rel_tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            scenario: "s".into(),
            seed: 42,
            statements: 16,
            candidates: 7,
            partition_parts: 3,
            opt_total: 1000.5,
            checkpoints: vec![8, 16],
            service: None,
            cells: vec![CellReport {
                label: "WFIT".into(),
                advisor: "WFIT-fixed".into(),
                total_work: 1100.25,
                query_cost: 1000.25,
                transition_cost: 100.0,
                transitions: 2,
                opt_ratio: 0.909,
                ratio_series: vec![(8, 0.88), (16, 0.909)],
                whatif_calls: 64,
                repartitions: 0,
                states_tracked: 12,
                monitored: 5,
                final_config_size: 3,
                regret: 99.75,
                safety_fallbacks: 4,
                wall_time_ms: 1.5,
            }],
        }
    }

    #[test]
    fn deterministic_json_excludes_timing() {
        let r = sample();
        let text = r.to_json();
        assert!(!text.contains("wall_time_ms"));
        assert!(r.to_json_with_timing().contains("wall_time_ms"));
        // The regret/safety counters are deterministic and golden-pinned.
        assert!(text.contains("\"regret\": 99.75"));
        assert!(text.contains("\"safety_fallbacks\": 4"));
        // Re-rendering is byte-identical.
        assert_eq!(text, r.to_json());
    }

    #[test]
    fn report_round_trips_and_diffs_clean_against_itself() {
        let r = sample();
        let diffs = r.diff_against_golden(&r.to_json(), 1e-9).unwrap();
        assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn diff_catches_metric_regression() {
        let r = sample();
        let mut worse = sample();
        worse.cells[0].total_work *= 1.10;
        let diffs = worse.diff_against_golden(&r.to_json(), 1e-6).unwrap();
        assert!(diffs.iter().any(|d| d.contains("total_work")), "{diffs:?}");
    }

    #[test]
    fn service_summary_renders_deterministic_and_timing_fields() {
        let mut r = sample();
        r.service = Some(ServiceSummary {
            tenants: 3,
            sessions: 9,
            query_events: 96,
            vote_events: 6,
            cache_requests: 1000,
            cache_hits: 700,
            cache_hit_rate: 0.7,
            cache_evictions: 42,
            cache_entries: 64,
            ibg_builds: 12,
            ibg_reuses: 24,
            workers: 4,
            steal: true,
            session_runs: 9,
            stolen_runs: 2,
            max_queue_depth: 34,
            load_imbalance: 1.25,
            per_tenant_depth: 8,
            global_depth: 20,
            offered_events: 120,
            shed_events: 3,
            deferred_events: 1,
            rejected_submits: 14,
            peak_pending: 20,
            persist: true,
            wal_rounds: 17,
            ghost_hits: 31,
            capacity_final: 96,
            epochs: 5,
            replans: 4,
            events_per_sec: 123.4,
            latency_p50_us: 10,
            latency_p99_us: 50,
            tenant_latency_p50_us: vec![9, 11, 10],
            tenant_latency_p99_us: vec![40, 60, 50],
        });
        let stable = r.to_json();
        assert!(stable.contains("cache_hit_rate"));
        // Eviction, IBG-store and scheduler counters are deterministic and
        // belong to the golden rendering.
        assert!(stable.contains("cache_evictions") && stable.contains("ibg_reuses"));
        assert!(stable.contains("stolen_runs") && stable.contains("load_imbalance"));
        assert!(stable.contains("\"steal\": true"));
        // Admission-gate counters are pure functions of submission order and
        // belong to the golden rendering too.
        assert!(stable.contains("shed_events") && stable.contains("rejected_submits"));
        assert!(stable.contains("peak_pending") && stable.contains("per_tenant_depth"));
        // Persistence counters are deterministic (the WAL-round total is the
        // same whether or not the run was interrupted mid-way).
        assert!(stable.contains("\"persist\": true") && stable.contains("wal_rounds"));
        // Adaptive-control counters (ARC ghosts, controller verdict, epoch
        // ledger) are pure functions of the event sequence — golden too.
        assert!(stable.contains("\"ghost_hits\": 31") && stable.contains("\"capacity_final\": 96"));
        assert!(stable.contains("\"epochs\": 5") && stable.contains("\"replans\": 4"));
        // Wall-clock service metrics never reach the golden-file rendering.
        assert!(!stable.contains("events_per_sec"));
        assert!(!stable.contains("latency_p99_us"));
        let timing = r.to_json_with_timing();
        assert!(timing.contains("events_per_sec") && timing.contains("latency_p99_us"));
        assert!(timing.contains("tenant_latency_p99_us"));
        let diffs = r.diff_against_golden(&stable, 1e-9).unwrap();
        assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn cell_lookup_by_label() {
        let r = sample();
        assert!(r.cell("WFIT").is_some());
        assert!(r.cell("nope").is_none());
    }
}
