//! # harness — deterministic scenario replay for the WFIT reproduction
//!
//! The experiment subsystem every figure bench and regression test builds
//! on.  A declarative [`ScenarioSpec`] (workload phases, drift, update
//! fractions, seeded RNG, scripted DBA-feedback events, advisor fleet) is
//! replayed deterministically by [`ScenarioContext`], producing a structured
//! [`RunReport`] — total-work ratio vs. OPT, transition cost, what-if calls,
//! repartitions, recommendation churn, wall time — serializable to JSON for
//! golden-run regression testing.
//!
//! Design rules:
//!
//! * **No process-global state.** The workload phase length and seed are
//!   explicit spec fields; the harness never reads environment variables, so
//!   concurrent scenarios cannot race (the benches read `WFIT_PHASE_LEN`
//!   once, at their own entry points).
//! * **Deterministic replay.** All id-interning and offline analysis happens
//!   single-threaded in [`ScenarioContext::prepare`]; the independent
//!   (advisor × options) cells then run in parallel with
//!   `std::thread::scope`, each owning its advisor and RNG, so thread
//!   interleaving never changes a reported metric.  Identical specs render
//!   byte-identical [`RunReport::to_json`] output.
//! * **Offline-friendly JSON.** The vendored `serde` stub cannot serialize,
//!   so the [`json`] module provides a small deterministic writer/parser and
//!   a tolerance-aware diff for golden files.
//!
//! The canonical scenarios (the paper's Figures 8–12, overhead, ablations,
//! and the miniature golden variants) live in [`scenarios`].  Multi-tenant
//! **service** scenarios — many workload streams pushed through
//! [`service::TuningService`] with shared per-tenant what-if caches — live
//! in [`service_run`] and report through the same [`RunReport`] (plus a
//! [`report::ServiceSummary`] block).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod json;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod service_run;
pub mod spec;

pub use json::Json;
pub use report::{CellReport, RunReport, ServiceSummary};
pub use runner::{run_scenario, ScenarioContext};
pub use service::AdaptiveCacheConfig;
pub use service_run::{
    run_service_control, run_service_scenario, run_service_scenario_traced, ServiceEventKind,
    ServiceScenarioSpec, ServiceSessionSpec, ServiceTrace,
};
pub use simdb::cache::CachePolicy;
pub use spec::{AcceptanceSpec, AdvisorSpec, CellSpec, FeedbackEvent, FeedbackSpec, ScenarioSpec};
