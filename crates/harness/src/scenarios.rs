//! The canonical scenario catalog: the paper's Figures 8–12 plus the
//! overhead and ablation studies, each as a declarative [`ScenarioSpec`], and
//! miniature fixed-seed variants of Figures 8, 9 and 11 used by the golden
//! regression suite in `tests/scenarios.rs`.
//!
//! Every constructor takes the phase length **explicitly**; reading the
//! `WFIT_PHASE_LEN` environment variable is the job of the bench entry
//! points (`crates/bench`), never of the harness.

use crate::service_run::{ServiceScenarioSpec, ServiceSessionSpec};
use crate::spec::{AdvisorSpec, CellSpec, FeedbackEvent, FeedbackSpec, ScenarioSpec};
use service::AdaptiveCacheConfig;
use simdb::cache::CachePolicy;
use wfit_core::config::WfitConfig;
use workload::{Dataset, PhaseSpec};

/// Statements per phase of the miniature golden scenarios.  Small enough for
/// tier-1 test time, large enough that WFIT transitions and OPT is non-trivial.
pub const MINI_PHASE_LEN: usize = 6;

/// Figure 8 — baseline performance: WFIT at `stateCnt ∈ {2000, 500, 100}`,
/// WFIT-IND and BC, fixed partition, no feedback.
pub fn fig8(statements_per_phase: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("fig8-baseline", statements_per_phase);
    for state_cnt in [2000u64, 500, 100] {
        spec = spec.cell(CellSpec::new(
            format!("WFIT-{state_cnt}"),
            AdvisorSpec::WfitFixed { state_cnt },
        ));
    }
    spec.cell(CellSpec::new("WFIT-IND", AdvisorSpec::WfitIndependent))
        .cell(CellSpec::new("BC", AdvisorSpec::Bc))
}

/// Figure 9 — effect of DBA feedback: the prescient `V_GOOD` stream, no
/// feedback, and the adversarial `V_BAD` mirror.
pub fn fig9(statements_per_phase: usize) -> ScenarioSpec {
    ScenarioSpec::new("fig9-feedback", statements_per_phase)
        .cell(
            CellSpec::new("GOOD", AdvisorSpec::WfitFixed { state_cnt: 500 })
                .with_feedback(FeedbackSpec::OptGood),
        )
        .cell(CellSpec::new(
            "WFIT",
            AdvisorSpec::WfitFixed { state_cnt: 500 },
        ))
        .cell(
            CellSpec::new("BAD", AdvisorSpec::WfitFixed { state_cnt: 500 })
                .with_feedback(FeedbackSpec::OptBad),
        )
}

/// Figure 10 — feedback under the independence assumption.
pub fn fig10(statements_per_phase: usize) -> ScenarioSpec {
    ScenarioSpec::new("fig10-feedback-ind", statements_per_phase)
        .cell(
            CellSpec::new("GOOD-IND", AdvisorSpec::WfitIndependent)
                .with_feedback(FeedbackSpec::OptGood),
        )
        .cell(CellSpec::new("WFIT-IND", AdvisorSpec::WfitIndependent))
}

/// Figure 11 — effect of delayed responses (`LAG T`).
pub fn fig11(statements_per_phase: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("fig11-lag", statements_per_phase);
    for lag in [1usize, 25, 50, 75] {
        let label = if lag == 1 {
            "WFIT".to_string()
        } else {
            format!("LAG {lag}")
        };
        spec = spec
            .cell(CellSpec::new(label, AdvisorSpec::WfitFixed { state_cnt: 500 }).with_lag(lag));
    }
    spec
}

/// Figure 12 — automatic maintenance of the stable partition (AUTO vs FIXED).
pub fn fig12(statements_per_phase: usize) -> ScenarioSpec {
    ScenarioSpec::new("fig12-auto-partition", statements_per_phase)
        .cell(CellSpec::new(
            "AUTO",
            AdvisorSpec::WfitAuto {
                config: WfitConfig::default(),
            },
        ))
        .cell(CellSpec::new(
            "FIXED",
            AdvisorSpec::WfitFixed { state_cnt: 500 },
        ))
}

/// Overhead study (Section 6.2): fixed-partition WFIT at three `stateCnt`
/// settings plus full AUTO, for wall-clock / what-if-call profiling.
pub fn overhead(statements_per_phase: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("overhead", statements_per_phase);
    for state_cnt in [2000u64, 500, 100] {
        spec = spec.cell(CellSpec::new(
            format!("WFIT-{state_cnt}"),
            AdvisorSpec::WfitFixed { state_cnt },
        ));
    }
    spec.cell(CellSpec::new(
        "AUTO",
        AdvisorSpec::WfitAuto {
            config: WfitConfig::default(),
        },
    ))
}

/// Ablation studies over the AUTO knobs: one scenario per swept knob
/// (`histSize`, `idxCnt`, `choosePartition` randomization).
pub fn ablations(statements_per_phase: usize) -> Vec<ScenarioSpec> {
    let auto = |config: WfitConfig| AdvisorSpec::WfitAuto { config };
    let mut hist = ScenarioSpec::new("ablation-hist-size", statements_per_phase);
    for hist_size in [10usize, 100, 400] {
        hist = hist.cell(CellSpec::new(
            format!("hist={hist_size}"),
            auto(WfitConfig {
                hist_size,
                ..WfitConfig::default()
            }),
        ));
    }
    let mut idx = ScenarioSpec::new("ablation-idx-cnt", statements_per_phase);
    for idx_cnt in [10usize, 20, 40] {
        idx = idx.cell(CellSpec::new(
            format!("idxCnt={idx_cnt}"),
            auto(WfitConfig {
                idx_cnt,
                ..WfitConfig::default()
            }),
        ));
    }
    let mut rand = ScenarioSpec::new("ablation-rand-cnt", statements_per_phase);
    for rand_cnt in [0usize, 8, 32] {
        rand = rand.cell(CellSpec::new(
            format!("rand={rand_cnt}"),
            auto(WfitConfig {
                rand_cnt,
                ..WfitConfig::default()
            }),
        ));
    }
    vec![hist, idx, rand]
}

/// Miniature Figure 8 for the golden suite: fixed seed, no feedback.
pub fn fig8_mini() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("fig8-mini", MINI_PHASE_LEN);
    for state_cnt in [500u64, 100] {
        spec = spec.cell(CellSpec::new(
            format!("WFIT-{state_cnt}"),
            AdvisorSpec::WfitFixed { state_cnt },
        ));
    }
    spec.cell(CellSpec::new("WFIT-IND", AdvisorSpec::WfitIndependent))
        .cell(CellSpec::new("BC", AdvisorSpec::Bc))
        .cell(CellSpec::new("NO-INDEX", AdvisorSpec::NoIndex))
}

/// Miniature Figure 9 for the golden suite: OPT-derived and explicitly
/// scripted feedback streams.
pub fn fig9_mini() -> ScenarioSpec {
    ScenarioSpec::new("fig9-mini", MINI_PHASE_LEN)
        .cell(
            CellSpec::new("GOOD", AdvisorSpec::WfitFixed { state_cnt: 500 })
                .with_feedback(FeedbackSpec::OptGood),
        )
        .cell(CellSpec::new(
            "WFIT",
            AdvisorSpec::WfitFixed { state_cnt: 500 },
        ))
        .cell(
            CellSpec::new("BAD", AdvisorSpec::WfitFixed { state_cnt: 500 })
                .with_feedback(FeedbackSpec::OptBad),
        )
        .cell(
            CellSpec::new("SCRIPTED", AdvisorSpec::WfitFixed { state_cnt: 500 }).with_feedback(
                FeedbackSpec::Scripted(vec![
                    FeedbackEvent {
                        position: 4,
                        approve_ranks: vec![0, 1],
                        reject_ranks: vec![],
                    },
                    FeedbackEvent {
                        position: 24,
                        approve_ranks: vec![],
                        reject_ranks: vec![0],
                    },
                ]),
            ),
        )
}

/// Miniature Figure 11 for the golden suite: delayed acceptance.
pub fn fig11_mini() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("fig11-mini", MINI_PHASE_LEN);
    for lag in [1usize, 8, 16] {
        let label = if lag == 1 {
            "WFIT".to_string()
        } else {
            format!("LAG {lag}")
        };
        spec = spec
            .cell(CellSpec::new(label, AdvisorSpec::WfitFixed { state_cnt: 500 }).with_lag(lag));
    }
    spec
}

/// Tie-break seed of the bandit cells in the golden scenarios.
pub const BANDIT_MINI_SEED: u64 = 0xB0BA;

/// Miniature *ad-hoc drift* scenario for the bandit arm: the C²UCB bandit
/// head-to-head against WFIT-500, BC and the never-index baseline over the
/// paper's eight-phase drifting workload — the regime where the candidate
/// pool's benefits shift phase by phase and the safety gate earns its keep.
/// A second bandit cell receives scripted votes, pinning the pin/ban
/// feedback semantics in the golden.  The golden snapshot pins each cell's
/// `regret` / `safety_fallbacks` / `whatif_calls`.
pub fn bandit_mini() -> ScenarioSpec {
    ScenarioSpec::new("bandit-mini", MINI_PHASE_LEN)
        .cell(CellSpec::new(
            "BANDIT",
            AdvisorSpec::Bandit {
                seed: BANDIT_MINI_SEED,
            },
        ))
        .cell(
            CellSpec::new(
                "BANDIT-VOTED",
                AdvisorSpec::Bandit {
                    seed: BANDIT_MINI_SEED,
                },
            )
            .with_feedback(FeedbackSpec::Scripted(vec![
                FeedbackEvent {
                    position: 4,
                    approve_ranks: vec![0],
                    reject_ranks: vec![],
                },
                FeedbackEvent {
                    position: 24,
                    approve_ranks: vec![],
                    reject_ranks: vec![1],
                },
            ])),
        )
        .cell(CellSpec::new(
            "WFIT-500",
            AdvisorSpec::WfitFixed { state_cnt: 500 },
        ))
        .cell(CellSpec::new("BC", AdvisorSpec::Bc))
        .cell(CellSpec::new("NO-INDEX", AdvisorSpec::NoIndex))
}

/// The HTAP phase structure of [`bandit_htap_mini`]: each dataset pair is
/// held for two consecutive phases — an analytic phase at 5% updates followed
/// by a transactional phase at 45% — so the *same* candidate indexes swing
/// from strongly beneficial to pure maintenance burden without the data
/// shifting underneath them.
pub fn htap_phases() -> Vec<PhaseSpec> {
    use Dataset::*;
    let drift = [
        (TpcH, TpcC),
        (TpcH, TpcC),
        (TpcC, TpcE),
        (TpcC, TpcE),
        (TpcE, Nref),
        (TpcE, Nref),
        (Nref, TpcH),
        (Nref, TpcH),
    ];
    drift
        .into_iter()
        .enumerate()
        .map(|(i, (primary, secondary))| PhaseSpec {
            primary,
            secondary,
            update_fraction: if i % 2 == 0 { 0.05 } else { 0.45 },
        })
        .collect()
}

/// Miniature *HTAP* scenario for the bandit arm: alternating read-heavy and
/// update-heavy phases ([`htap_phases`]).  The always-index baseline pays
/// maintenance through every transactional phase, the bandit must learn to
/// retreat — its safety gate blocks deployments whose estimated cost exceeds
/// staying put, so `safety_fallbacks` is pinned non-zero by the golden.
pub fn bandit_htap_mini() -> ScenarioSpec {
    ScenarioSpec::new("bandit-htap-mini", MINI_PHASE_LEN)
        .with_phases(htap_phases())
        .cell(CellSpec::new(
            "BANDIT",
            AdvisorSpec::Bandit {
                seed: BANDIT_MINI_SEED,
            },
        ))
        .cell(CellSpec::new(
            "WFIT-500",
            AdvisorSpec::WfitFixed { state_cnt: 500 },
        ))
        .cell(CellSpec::new("ALL-CAND", AdvisorSpec::AllCandidates))
        .cell(CellSpec::new("NO-INDEX", AdvisorSpec::NoIndex))
}

/// The multi-tenant service throughput scenario: `tenants` independent
/// workload streams, each served by a WFIT-500 / WFIT-IND / BC session fleet
/// over a shared per-tenant what-if cache, with periodic DBA votes.  This is
/// the hot path the service layer exists for — use
/// [`crate::run_service_scenario`] to replay it.
pub fn service_throughput(tenants: usize, statements_per_phase: usize) -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-throughput", tenants, statements_per_phase)
        .with_feedback_every(16)
}

/// Miniature service scenario for the golden suite: three tenants, the full
/// fleet, shared caches, scheduled votes; small enough for tier-1 test time.
pub fn service_mini() -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-mini", 3, MINI_PHASE_LEN).with_feedback_every(16)
}

/// Shared-cache capacity of [`service_evict_mini`]: deliberately far below
/// the scenario's working set (the unbounded run of the same workload keeps
/// several hundred entries per tenant resident), so the CLOCK sweep must
/// evict continuously and the golden snapshot pins the eviction counters.
pub const EVICT_MINI_CACHE_CAPACITY: usize = 48;

/// Query-batch size of [`service_evict_mini`].
pub const EVICT_MINI_BATCH_SIZE: usize = 4;

/// Miniature *bounded* service scenario for the golden suite: the
/// [`service_mini`] workload with each tenant's cache capacity forced below
/// its working set, query batching, and cross-session IBG reuse — the
/// hot-path configuration.  Costs must match [`service_mini`] exactly (the
/// knobs may only change overhead counters); the golden snapshot
/// additionally pins hit rate, eviction count and IBG reuse counters.
pub fn service_evict_mini() -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-evict-mini", 3, MINI_PHASE_LEN)
        .with_feedback_every(16)
        .with_cache_capacity(EVICT_MINI_CACHE_CAPACITY)
        .with_batch_size(EVICT_MINI_BATCH_SIZE)
        .with_ibg_reuse(true)
}

/// Hot-tenant event multiplier of the skewed service scenarios: tenant 0
/// replays 8× the statements of every other tenant, the shape that
/// serializes a pinned-bin scheduler behind one worker.
pub const SKEW_FACTOR: usize = 8;

/// The skewed service scenario: one hot tenant ([`SKEW_FACTOR`]× events),
/// `tenants - 1` cold ones, drained by `workers` workers with work-stealing
/// on.  The cross-tenant scheduling hot path: without stealing the hot
/// tenant's backlog serializes behind one worker while the others idle;
/// with it, idle workers take the hot bin's session-runs.
pub fn service_skewed(tenants: usize, statements_per_phase: usize) -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-skewed", tenants, statements_per_phase)
        .with_feedback_every(16)
        .with_skew(SKEW_FACTOR)
        .with_steal(true)
}

/// Miniature skewed scenario for the golden suite: three tenants (one hot at
/// [`SKEW_FACTOR`]×), a two-session fleet, four workers, stealing on.  The
/// shared cache is disabled: concurrently-executing stolen session-runs
/// would race on the hit/miss split, and the golden's purpose is to pin the
/// metrics that *are* deterministic under stealing — every cost cell, the
/// steal counters and the fairness/queue-depth numbers.
pub fn service_skew_mini() -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-skew-mini", 3, 2)
        .with_sessions(vec![
            ServiceSessionSpec::WfitFixed { state_cnt: 500 },
            ServiceSessionSpec::Bc,
        ])
        .with_feedback_every(8)
        .with_shared_cache(false)
        .with_skew(SKEW_FACTOR)
        .with_workers(4)
        .with_steal(true)
}

/// Per-tenant ingress depth of [`service_overload_mini`]: deliberately far
/// below a wave's per-tenant offer, so the admission gate must reject and
/// votes landing on full queues must displace queued queries.
pub const OVERLOAD_MINI_DEPTH: usize = 8;

/// Global ingress budget of [`service_overload_mini`]: below
/// `tenants × OVERLOAD_MINI_DEPTH`, so tenants also contend for the shared
/// budget and some rejections carry the `GlobalFull` reason.
pub const OVERLOAD_MINI_GLOBAL: usize = 20;

/// Offered-load multiplier of [`service_overload_mini`]: each tenant offers
/// 4× the per-tenant capacity between drain rounds.
pub const OVERLOAD_MINI_OFFERED: usize = 4;

/// Miniature *overload* scenario for the golden suite: three tenants flood a
/// bounded ingress ([`OVERLOAD_MINI_DEPTH`] per tenant,
/// [`OVERLOAD_MINI_GLOBAL`] global) at [`OVERLOAD_MINI_OFFERED`]× capacity
/// with scheduled votes, so the gate rejects overflow queries and votes
/// displace queued ones.  The golden snapshot pins the shed / deferred /
/// rejected counters and `peak_pending` — all pure functions of submission
/// order — and `tests/scenarios.rs` additionally proves the surviving
/// events' cost cells are bit-equal to an un-shed control replay
/// ([`crate::run_service_control`]).
pub fn service_overload_mini() -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-overload-mini", 3, MINI_PHASE_LEN)
        .with_sessions(vec![
            ServiceSessionSpec::WfitFixed { state_cnt: 500 },
            ServiceSessionSpec::Bc,
        ])
        .with_feedback_every(6)
        .with_ingress_depths(OVERLOAD_MINI_DEPTH, OVERLOAD_MINI_GLOBAL)
        .with_offered_multiplier(OVERLOAD_MINI_OFFERED)
}

/// Initial per-tenant cache capacity of [`service_adversarial_skew`]:
/// deliberately far below the hot tenants' working sets, so a static cache
/// thrashes and the working-set controller has evidence to grow on.
pub const ADVERSARIAL_CACHE_CAPACITY: usize = 16;

/// Global cache-memory budget of [`service_adversarial_skew`]: enough for
/// the controller to grow the hot tenants several times over, but a hard
/// ceiling the golden pins (`capacity_final ≤` this).
pub const ADVERSARIAL_CACHE_BUDGET: usize = 768;

/// Capacity floor of the adaptive arm's [`AdaptiveCacheConfig`]: the
/// controller jumpstarts every tenant from the undersized
/// [`ADVERSARIAL_CACHE_CAPACITY`] straight to this floor at the first
/// round boundary, then grows on eviction/ghost-hit evidence.  The floor
/// must be big enough that a session-run moved to a *later* epoch segment
/// still finds the earlier segment's what-if fills resident — that is what
/// lets the adaptive arm win hit rate and load balance at the same time.
pub const ADVERSARIAL_MIN_CAPACITY: usize = 128;

/// Epoch cadence of [`service_adversarial_skew`]: cut a scheduling epoch
/// every this-many completed session-runs.  With three tenants running a
/// three-session fleet (nine session-runs a round), cadence four yields
/// three segments whose weight quota splits each hot tenant's runs 2 + 1:
/// two runs stay co-located (preserving their batch-major cache sharing)
/// while the third re-plans onto the other worker and flattens the round.
/// A finer cadence would separate *all* runs and thrash the shared cache;
/// a coarser one would let a single quota chunk lump the whole tenant back
/// onto one worker, reproducing the one-shot imbalance.
pub const ADVERSARIAL_EPOCH_RUNS: usize = 4;

/// Miniature *adversarial* self-tuning scenario for the golden suite: the
/// hot spot migrates from tenant 0 to the last tenant mid-run
/// ([`ServiceScenarioSpec::hot_flip`]) and both hot tenants replay a
/// cache-flushing scan burst, against deliberately undersized
/// ([`ADVERSARIAL_CACHE_CAPACITY`]) caches.  The golden arm runs the full
/// adaptive stack — scan-resistant ARC policy, working-set capacity
/// controller under [`ADVERSARIAL_CACHE_BUDGET`], epoch re-planning every
/// [`ADVERSARIAL_EPOCH_RUNS`] completed session-runs — and the golden
/// snapshot pins its `ghost_hits`, `capacity_final`, `epochs` and
/// `replans`.  `tests/scenarios.rs` additionally replays the static
/// control arm ([`service_adversarial_skew_control`]) and asserts every
/// advisor cost cell is bit-equal while hit rate and `load_imbalance`
/// strictly improve under adaptation.
pub fn service_adversarial_skew() -> ServiceScenarioSpec {
    service_adversarial_skew_control()
        .with_cache_policy(CachePolicy::Arc)
        .with_adaptive_cache(AdaptiveCacheConfig {
            min_capacity: ADVERSARIAL_MIN_CAPACITY,
            ..AdaptiveCacheConfig::default()
        })
        .with_cache_budget(ADVERSARIAL_CACHE_BUDGET)
        .with_epoch_runs(ADVERSARIAL_EPOCH_RUNS)
        .with_name("service-adversarial-skew")
}

/// The static control arm of [`service_adversarial_skew`]: identical
/// workload, fleet and hot-flip schedule, but CLOCK caches at fixed
/// capacity and one-shot round planning — the baseline the adaptive arm
/// must strictly beat on hit rate and `load_imbalance` while reproducing
/// its cost cells bit-for-bit.
pub fn service_adversarial_skew_control() -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-adversarial-skew-control", 3, 2)
        .with_sessions(vec![
            ServiceSessionSpec::WfitFixed { state_cnt: 500 },
            ServiceSessionSpec::WfitIndependent,
            ServiceSessionSpec::Bc,
        ])
        .with_feedback_every(8)
        .with_skew(SKEW_FACTOR)
        .with_workers(2)
        .with_cache_capacity(ADVERSARIAL_CACHE_CAPACITY)
        .with_hot_flip(true)
}

/// Kill-and-restore point of the crash arm of [`service_restore_mini`]: the
/// service dies before submitting wave 4, i.e. with a snapshot from wave 3
/// *and* one logged-but-unsnapshotted WAL round behind it — restore must
/// exercise both the snapshot and the WAL tail.
pub const RESTORE_MINI_CRASH_WAVE: usize = 4;

/// Miniature *durable* scenario for the golden suite: two tenants with a
/// WFIT-500 / BC fleet replay the [`MINI_PHASE_LEN`] workload in persistent
/// waves (one WAL record per drain round, a snapshot every
/// [`crate::service_run::PERSIST_SNAPSHOT_EVERY`] waves).  The golden
/// snapshot is produced by the uninterrupted run; `tests/scenarios.rs`
/// additionally replays the same spec with a kill-and-restore at
/// [`RESTORE_MINI_CRASH_WAVE`] and asserts the recovered run renders the
/// byte-identical report — cost cells, cache counters, WAL-round total and
/// all.
pub fn service_restore_mini() -> ServiceScenarioSpec {
    ServiceScenarioSpec::new("service-restore-mini", 2, MINI_PHASE_LEN)
        .with_sessions(vec![
            ServiceSessionSpec::WfitFixed { state_cnt: 500 },
            ServiceSessionSpec::Bc,
        ])
        .with_feedback_every(6)
        .with_persist(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_scenarios_have_the_expected_fleets() {
        assert_eq!(fig8(10).cells.len(), 5);
        assert_eq!(fig9(10).cells.len(), 3);
        assert_eq!(fig10(10).cells.len(), 2);
        assert_eq!(fig11(10).cells.len(), 4);
        assert_eq!(fig12(10).cells.len(), 2);
        assert_eq!(overhead(10).cells.len(), 4);
        assert_eq!(ablations(10).len(), 3);
    }

    #[test]
    fn mini_scenarios_share_the_default_seed_and_are_small() {
        for spec in [
            fig8_mini(),
            fig9_mini(),
            fig11_mini(),
            bandit_mini(),
            bandit_htap_mini(),
        ] {
            assert_eq!(spec.statements_per_phase, MINI_PHASE_LEN);
            assert_eq!(spec.total_statements(), 8 * MINI_PHASE_LEN);
            assert_eq!(spec.seed, ScenarioSpec::new("x", 1).seed);
        }
    }

    #[test]
    fn bandit_scenarios_field_the_expected_fleets() {
        let mini = bandit_mini();
        assert_eq!(mini.cells.len(), 5);
        let bandit_cells = mini
            .cells
            .iter()
            .filter(|c| matches!(c.advisor, AdvisorSpec::Bandit { .. }))
            .count();
        assert_eq!(bandit_cells, 2, "plain + voted bandit cells");
        assert!(mini.cells.iter().any(|c| c.label == "NO-INDEX"));
        // The HTAP variant holds each dataset pair for an analytic phase
        // then a transactional one, and keeps the default seed.
        let htap = bandit_htap_mini();
        assert_eq!(htap.cells.len(), 4);
        assert_eq!(htap.phases.len(), 8);
        for (i, phase) in htap.phases.iter().enumerate() {
            let expected = if i % 2 == 0 { 0.05 } else { 0.45 };
            assert_eq!(phase.update_fraction, expected);
            if i % 2 == 1 {
                let prev = &htap.phases[i - 1];
                assert_eq!(phase.primary, prev.primary, "pairs share data");
                assert_eq!(phase.secondary, prev.secondary);
            }
        }
        // The service fleet gains/loses the bandit arm idempotently.
        let svc = service_mini().with_bandit(true);
        assert_eq!(svc.sessions.len(), 4);
        let twice = svc.clone().with_bandit(true);
        assert_eq!(twice.sessions.len(), 4, "with_bandit is idempotent");
        assert_eq!(twice.with_bandit(false).sessions.len(), 3);
    }

    #[test]
    fn fig8_state_cnt_sweep_requires_extra_selections() {
        let cnts = fig8(10).state_cnts_needed();
        assert!(cnts.contains(&2000) && cnts.contains(&500) && cnts.contains(&100));
    }

    #[test]
    fn service_scenarios_are_parameterized_consistently() {
        let mini = service_mini();
        assert_eq!(mini.tenants, 3);
        assert_eq!(mini.statements_per_phase, MINI_PHASE_LEN);
        assert_eq!(mini.sessions.len(), 3);
        assert!(mini.shared_cache);
        assert_eq!(mini.feedback_every, 16);
        // The defaults keep the historical hot path: unbounded cache, no
        // batching, no IBG sharing.
        assert_eq!(mini.cache_capacity, 0);
        assert_eq!(mini.batch_size, 1);
        assert!(!mini.ibg_reuse);
        // The evict variant differs from service-mini only in the hot-path
        // knobs (same workload, fleet and feedback schedule).
        let evict = service_evict_mini();
        assert_eq!(evict.tenants, mini.tenants);
        assert_eq!(evict.seed, mini.seed);
        assert_eq!(evict.feedback_every, mini.feedback_every);
        assert_eq!(evict.cache_capacity, EVICT_MINI_CACHE_CAPACITY);
        assert_eq!(evict.batch_size, EVICT_MINI_BATCH_SIZE);
        assert!(evict.ibg_reuse && evict.shared_cache);
        let big = service_throughput(8, 60);
        assert_eq!(big.tenants, 8);
        assert_eq!(big.statements_per_tenant(), 8 * 60);
        // Tenant seeds are decorrelated but reproducible.
        assert_ne!(big.tenant_seed(0), big.tenant_seed(1));
        assert_eq!(big.tenant_seed(5), service_throughput(8, 60).tenant_seed(5));
    }

    #[test]
    fn skewed_scenarios_make_tenant_zero_hot() {
        let skewed = service_skewed(4, 10);
        assert_eq!(skewed.skew, SKEW_FACTOR);
        assert!(skewed.steal);
        assert_eq!(skewed.statements_for_tenant(0), 8 * 10 * SKEW_FACTOR);
        assert_eq!(skewed.statements_for_tenant(1), 8 * 10);
        assert_eq!(
            skewed.total_statements(),
            8 * 10 * (SKEW_FACTOR + 3),
            "one hot + three cold tenants"
        );
        let mini = service_skew_mini();
        assert_eq!(mini.tenants, 3);
        assert_eq!(mini.sessions.len(), 2);
        assert!(mini.steal && !mini.shared_cache && !mini.ibg_reuse);
        assert_eq!(mini.resolved_workers(), 4);
        // The default scenarios stay unskewed and pinned.
        assert_eq!(service_mini().skew, 1);
        assert!(!service_mini().steal);
        assert_eq!(service_mini().resolved_workers(), 3);
    }

    #[test]
    fn overload_mini_floods_a_bounded_ingress() {
        let overload = service_overload_mini();
        assert!(overload.is_bounded());
        assert_eq!(overload.per_tenant_depth, OVERLOAD_MINI_DEPTH);
        assert_eq!(overload.global_depth, OVERLOAD_MINI_GLOBAL);
        assert_eq!(overload.offered_multiplier, OVERLOAD_MINI_OFFERED);
        // The global budget is the contended resource: it is below the sum
        // of the per-tenant depths.
        assert!(OVERLOAD_MINI_GLOBAL < overload.tenants * OVERLOAD_MINI_DEPTH);
        // Each wave offers more per tenant than both limits can admit.
        const { assert!(OVERLOAD_MINI_OFFERED * OVERLOAD_MINI_DEPTH > OVERLOAD_MINI_GLOBAL) };
        // Votes are scheduled often enough to land on full queues.
        assert_eq!(overload.feedback_every, MINI_PHASE_LEN);
        // The default scenarios stay unbounded.
        assert!(!service_mini().is_bounded());
        assert!(!service_skew_mini().is_bounded());
        assert_eq!(service_mini().offered_multiplier, 1);
    }

    #[test]
    fn adversarial_skew_arms_differ_only_in_the_adaptive_stack() {
        let adaptive = service_adversarial_skew();
        let control = service_adversarial_skew_control();
        // The adaptive stack is the only difference between the arms: same
        // workload, fleet, schedule shape and initial capacity.
        assert!(adaptive.hot_flip && control.hot_flip);
        assert_eq!(adaptive.seed, control.seed);
        assert_eq!(adaptive.tenants, control.tenants);
        assert_eq!(adaptive.sessions.len(), control.sessions.len());
        assert_eq!(adaptive.skew, control.skew);
        assert_eq!(adaptive.cache_capacity, ADVERSARIAL_CACHE_CAPACITY);
        assert_eq!(control.cache_capacity, ADVERSARIAL_CACHE_CAPACITY);
        assert_eq!(adaptive.resolved_workers(), control.resolved_workers());
        assert_eq!(adaptive.cache_policy, CachePolicy::Arc);
        assert_eq!(control.cache_policy, CachePolicy::Clock);
        assert!(control.adaptive_cache.is_none());
        let bounds = adaptive
            .adaptive_cache
            .expect("adaptive arm has a controller");
        assert_eq!(bounds.min_capacity, ADVERSARIAL_MIN_CAPACITY);
        // The floor jumpstart stays below the global budget, and the
        // epoch cadence splits the nine session-runs into three segments.
        assert!(adaptive.tenants * ADVERSARIAL_MIN_CAPACITY < ADVERSARIAL_CACHE_BUDGET);
        assert_eq!(adaptive.sessions.len(), 3);
        assert_eq!(adaptive.epoch_runs, ADVERSARIAL_EPOCH_RUNS);
        assert_eq!(control.epoch_runs, 0);
        // Both hot tenants carry the skew; the middle tenant stays cold.
        assert_eq!(
            adaptive.statements_for_tenant(0),
            adaptive.statements_for_tenant(2)
        );
        assert_eq!(
            adaptive.statements_for_tenant(0),
            SKEW_FACTOR * adaptive.statements_for_tenant(1)
        );
        // Neither steals (cache determinism comes from whole-tenant bins /
        // epoch segments, not from disabling the cache).
        assert!(!adaptive.steal && adaptive.shared_cache);
        // The budget leaves the controller real headroom above the floor.
        assert!(ADVERSARIAL_CACHE_BUDGET > adaptive.tenants * ADVERSARIAL_CACHE_CAPACITY);
    }

    #[test]
    fn restore_mini_is_durable_and_crashes_past_a_snapshot() {
        let restore = service_restore_mini();
        assert!(restore.persist && restore.crash_at.is_none());
        assert!(
            !restore.is_bounded(),
            "persistence needs the unbounded shape"
        );
        assert_eq!(restore.tenants, 2);
        assert_eq!(restore.sessions.len(), 2);
        // The crash wave must exist (the run is longer than the crash
        // point) and must sit strictly between two snapshot waves, so the
        // restore replays a snapshot *plus* a WAL tail.
        let events =
            restore.total_statements() + restore.total_statements() / restore.feedback_every;
        let waves = events.div_ceil(crate::service_run::PERSIST_WAVE);
        assert!(
            RESTORE_MINI_CRASH_WAVE < waves,
            "crash wave {RESTORE_MINI_CRASH_WAVE} of {waves}"
        );
        const {
            assert!(
                !RESTORE_MINI_CRASH_WAVE.is_multiple_of(crate::service_run::PERSIST_SNAPSHOT_EVERY)
            );
            assert!(RESTORE_MINI_CRASH_WAVE > crate::service_run::PERSIST_SNAPSHOT_EVERY);
        }
        // The default scenarios stay in-memory.
        assert!(!service_mini().persist);
        assert_eq!(service_mini().crash_at, None);
    }
}
