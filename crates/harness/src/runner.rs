//! Deterministic scenario replay.
//!
//! [`ScenarioContext::prepare`] does all the order-sensitive work once, on a
//! single thread: generate the workload from the spec's seed, mine the
//! offline candidate selections (which interns every candidate `IndexId` in
//! workload order, fixing the id space for the rest of the run) and compute
//! the OPT oracle.  [`ScenarioContext::run`] then replays the independent
//! (advisor × options) cells in parallel with `std::thread::scope`; every
//! cell owns its advisor and RNG state, so thread interleaving cannot change
//! any reported metric.

use std::time::Instant;

use advisors::{compute_optimal, good_feedback_stream, OptSchedule};
use advisors::{
    AllCandidatesAdvisor, BanditAdvisor, BanditConfig, BruchoChaudhuriAdvisor, NoIndexAdvisor,
};
use ibg::partition::Partition;
use simdb::database::Database;
use simdb::index::IndexSet;
use simdb::query::Statement;
use wfit_core::candidates::{offline_selection, OfflineSelection};
use wfit_core::config::WfitConfig;
use wfit_core::evaluator::{AcceptancePolicy, Evaluator, FeedbackStream, RunOptions, RunResult};
use wfit_core::wfit::Wfit;
use wfit_core::IndexAdvisor;
use workload::Benchmark;

use crate::report::{CellReport, RunReport};
use crate::spec::{AcceptanceSpec, AdvisorSpec, CellSpec, FeedbackSpec, ScenarioSpec};

/// A prepared scenario: the generated workload, the offline selections for
/// every `stateCnt` the fleet needs, and the OPT reference curve.
pub struct ScenarioContext {
    /// The scenario being replayed.
    pub spec: ScenarioSpec,
    /// The generated benchmark (database + statements).
    pub bench: Benchmark,
    /// Offline selections keyed by `stateCnt`; the spec's default is first.
    pub selections: Vec<(u64, OfflineSelection)>,
    /// The OPT oracle over the default selection.
    pub opt: OptSchedule,
}

impl ScenarioContext {
    /// Generate the workload and run the offline analysis for a spec.
    pub fn prepare(spec: ScenarioSpec) -> Self {
        let bench = Benchmark::generate(spec.benchmark_spec());
        let selections: Vec<(u64, OfflineSelection)> = spec
            .state_cnts_needed()
            .into_iter()
            .map(|state_cnt| {
                let config = WfitConfig::with_state_cnt(state_cnt);
                (
                    state_cnt,
                    offline_selection(&bench.db, &bench.statements, &config),
                )
            })
            .collect();
        let opt = compute_optimal(
            &bench.db,
            &bench.statements,
            &selections[0].1.partition,
            &IndexSet::empty(),
        );
        Self {
            spec,
            bench,
            selections,
            opt,
        }
    }

    /// The offline selection for the spec's default `stateCnt`.
    pub fn selection(&self) -> &OfflineSelection {
        &self.selections[0].1
    }

    /// The offline selection for a specific `stateCnt` (must be one of
    /// [`ScenarioSpec::state_cnts_needed`]).
    pub fn selection_for(&self, state_cnt: u64) -> &OfflineSelection {
        self.selections
            .iter()
            .find(|(c, _)| *c == state_cnt)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("no offline selection prepared for stateCnt {state_cnt}"))
    }

    /// The singleton (full independence) partition over the default
    /// candidate set.
    pub fn independent_partition(&self) -> Partition {
        self.selection()
            .candidates
            .iter()
            .map(|&c| vec![c])
            .collect()
    }

    /// Checkpoint positions (x-axis of the figures): every eighth of the
    /// workload plus the final statement.
    pub fn checkpoints(&self) -> Vec<usize> {
        checkpoint_positions(self.bench.len())
    }

    /// The paper's performance metric at a checkpoint:
    /// `totWork(OPT, Q_n) / totWork(A, Q_n)` (1.0 means optimal).
    pub fn ratio_at(&self, run: &RunResult, n: usize) -> f64 {
        let alg = run.cumulative_at(n);
        if alg <= 0.0 {
            return 1.0;
        }
        self.opt.cumulative_at(n) / alg
    }

    /// Ratio series over the checkpoints.
    pub fn ratio_series(&self, run: &RunResult) -> Vec<(usize, f64)> {
        self.checkpoints()
            .into_iter()
            .map(|n| (n, self.ratio_at(run, n)))
            .collect()
    }

    /// Resolve a cell's feedback script into a concrete vote stream.
    fn feedback_stream(&self, spec: &FeedbackSpec) -> FeedbackStream {
        match spec {
            FeedbackSpec::None => FeedbackStream::empty(),
            FeedbackSpec::OptGood => good_feedback_stream(&self.opt),
            FeedbackSpec::OptBad => good_feedback_stream(&self.opt).mirrored(),
            FeedbackSpec::Scripted(events) => {
                let candidates = &self.selection().candidates;
                let rank_set = |ranks: &[usize]| {
                    IndexSet::from_iter(ranks.iter().filter_map(|&r| candidates.get(r)).copied())
                };
                let mut stream = FeedbackStream::empty();
                for event in events {
                    stream.add(
                        event.position,
                        rank_set(&event.approve_ranks),
                        rank_set(&event.reject_ranks),
                    );
                }
                stream
            }
        }
    }

    /// Replay a single cell and collect its metrics.
    pub fn run_cell(&self, cell: &CellSpec) -> CellReport {
        let mut advisor = self.build_advisor(&cell.advisor);
        let options = RunOptions {
            acceptance: match cell.acceptance {
                AcceptanceSpec::Immediate => AcceptancePolicy::Immediate,
                AcceptanceSpec::EveryT(t) => AcceptancePolicy::EveryT(t),
            },
            feedback: self.feedback_stream(&cell.feedback),
            initial: IndexSet::empty(),
            implicit_feedback_on_accept: cell.implicit_feedback_on_accept,
            notify_materialized: false,
        };
        let evaluator = Evaluator::new(&self.bench.db);
        let start = Instant::now();
        let run = evaluator.run(&mut advisor, &self.bench.statements, &options);
        let wall_time_ms = start.elapsed().as_secs_f64() * 1000.0;

        let n = self.bench.len();
        let transition_cost: f64 = run.outcomes.iter().map(|o| o.transition_cost).sum();
        let transitions = run
            .outcomes
            .iter()
            .filter(|o| o.transition_cost > 0.0)
            .count();
        let cumulative: Vec<f64> = run
            .outcomes
            .iter()
            .map(|o| o.cumulative_total_work)
            .collect();
        CellReport {
            label: cell.label.clone(),
            advisor: run.advisor.clone(),
            total_work: run.total_work,
            query_cost: run.total_work - transition_cost,
            transition_cost,
            transitions,
            opt_ratio: self.ratio_at(&run, n),
            ratio_series: self.ratio_series(&run),
            whatif_calls: advisor.whatif_calls(),
            repartitions: advisor.repartitions(),
            states_tracked: advisor.states_tracked(),
            monitored: advisor.monitored(),
            final_config_size: run.outcomes.last().map_or(0, |o| o.configuration_size),
            regret: self.opt.regret_of(&cumulative),
            safety_fallbacks: advisor.safety_fallbacks(),
            wall_time_ms,
        }
    }

    /// Replay every cell — independent cells run in parallel — and assemble
    /// the report.  Cell order in the report always matches spec order.
    pub fn run(&self) -> RunReport {
        let cells: Vec<CellReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .spec
                .cells
                .iter()
                .map(|cell| scope.spawn(move || self.run_cell(cell)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cell replay panicked"))
                .collect()
        });
        self.assemble(cells)
    }

    /// Replay every cell one at a time on the calling thread.  Every reported
    /// metric is identical to [`ScenarioContext::run`] except `wall_time_ms`,
    /// which here measures each cell alone — use this when wall-clock time is
    /// the quantity under study (the overhead bench), since parallel cells
    /// time-slice against each other and contend on the shared what-if cache.
    pub fn run_sequential(&self) -> RunReport {
        let cells = self.spec.cells.iter().map(|c| self.run_cell(c)).collect();
        self.assemble(cells)
    }

    fn assemble(&self, cells: Vec<CellReport>) -> RunReport {
        RunReport {
            scenario: self.spec.name.clone(),
            seed: self.spec.seed,
            statements: self.bench.len(),
            candidates: self.selection().candidates.len(),
            partition_parts: self.selection().partition.len(),
            opt_total: self.opt.total,
            checkpoints: self.checkpoints(),
            cells,
            service: None,
        }
    }

    fn build_advisor(&self, spec: &AdvisorSpec) -> BuiltAdvisor<'_> {
        match spec {
            AdvisorSpec::WfitFixed { state_cnt } => {
                BuiltAdvisor::Wfit(Box::new(Wfit::with_fixed_partition(
                    &self.bench.db,
                    WfitConfig::with_state_cnt(*state_cnt),
                    self.selection_for(*state_cnt).partition.clone(),
                    IndexSet::empty(),
                )))
            }
            AdvisorSpec::WfitIndependent => {
                BuiltAdvisor::Wfit(Box::new(Wfit::with_fixed_partition(
                    &self.bench.db,
                    WfitConfig::independent(),
                    self.independent_partition(),
                    IndexSet::empty(),
                )))
            }
            AdvisorSpec::WfitAuto { config } => {
                BuiltAdvisor::Wfit(Box::new(Wfit::new(&self.bench.db, config.clone())))
            }
            AdvisorSpec::Bc => BuiltAdvisor::Bc(BruchoChaudhuriAdvisor::new(
                &self.bench.db,
                self.selection().candidates.clone(),
                &IndexSet::empty(),
            )),
            AdvisorSpec::Bandit { seed } => BuiltAdvisor::Bandit(Box::new(BanditAdvisor::new(
                &self.bench.db,
                self.selection().candidates.clone(),
                BanditConfig::with_seed(*seed),
            ))),
            AdvisorSpec::NoIndex => BuiltAdvisor::NoIndex(NoIndexAdvisor),
            AdvisorSpec::AllCandidates => BuiltAdvisor::All(
                AllCandidatesAdvisor::new(self.selection().candidates.clone()),
                self.selection().candidates.len(),
            ),
        }
    }
}

/// Prepare and replay a scenario in one call.
pub fn run_scenario(spec: ScenarioSpec) -> RunReport {
    ScenarioContext::prepare(spec).run()
}

/// Checkpoint positions over a workload of `n` statements: every eighth plus
/// the final statement.  Shared by the offline replay and the service
/// scenarios so both report families use identical x-axes.
pub(crate) fn checkpoint_positions(n: usize) -> Vec<usize> {
    let mut points: Vec<usize> = (1..=8).map(|i| i * n / 8).collect();
    points.dedup();
    if *points.last().unwrap_or(&0) != n {
        points.push(n);
    }
    points
}

/// The advisor fleet member built for one cell, with uniform access to the
/// per-advisor overhead metrics where they exist.  The WFIT state machine is
/// boxed: it dwarfs the other variants and one allocation per cell is free.
enum BuiltAdvisor<'e> {
    Wfit(Box<Wfit<&'e Database>>),
    Bc(BruchoChaudhuriAdvisor<&'e Database>),
    Bandit(Box<BanditAdvisor<&'e Database>>),
    NoIndex(NoIndexAdvisor),
    All(AllCandidatesAdvisor, usize),
}

impl BuiltAdvisor<'_> {
    fn whatif_calls(&self) -> u64 {
        match self {
            BuiltAdvisor::Wfit(w) => w.whatif_calls(),
            BuiltAdvisor::Bc(b) => b.whatif_calls(),
            BuiltAdvisor::Bandit(b) => b.whatif_calls(),
            _ => 0,
        }
    }

    fn repartitions(&self) -> u64 {
        match self {
            BuiltAdvisor::Wfit(w) => w.repartition_count(),
            _ => 0,
        }
    }

    fn states_tracked(&self) -> u64 {
        match self {
            BuiltAdvisor::Wfit(w) => w.state_count(),
            _ => 0,
        }
    }

    fn monitored(&self) -> usize {
        match self {
            BuiltAdvisor::Wfit(w) => w.monitored().len(),
            BuiltAdvisor::Bc(b) => b.candidates().len(),
            BuiltAdvisor::Bandit(b) => b.candidates().len(),
            BuiltAdvisor::NoIndex(_) => 0,
            BuiltAdvisor::All(_, n) => *n,
        }
    }
}

impl IndexAdvisor for BuiltAdvisor<'_> {
    fn analyze_query(&mut self, stmt: &Statement) {
        match self {
            BuiltAdvisor::Wfit(w) => w.analyze_query(stmt),
            BuiltAdvisor::Bc(b) => b.analyze_query(stmt),
            BuiltAdvisor::Bandit(b) => b.analyze_query(stmt),
            BuiltAdvisor::NoIndex(a) => a.analyze_query(stmt),
            BuiltAdvisor::All(a, _) => a.analyze_query(stmt),
        }
    }

    fn recommend(&self) -> IndexSet {
        match self {
            BuiltAdvisor::Wfit(w) => w.recommend(),
            BuiltAdvisor::Bc(b) => b.recommend(),
            BuiltAdvisor::Bandit(b) => b.recommend(),
            BuiltAdvisor::NoIndex(a) => a.recommend(),
            BuiltAdvisor::All(a, _) => a.recommend(),
        }
    }

    fn feedback(&mut self, positive: &IndexSet, negative: &IndexSet) {
        match self {
            BuiltAdvisor::Wfit(w) => w.feedback(positive, negative),
            BuiltAdvisor::Bc(b) => b.feedback(positive, negative),
            BuiltAdvisor::Bandit(b) => b.feedback(positive, negative),
            BuiltAdvisor::NoIndex(a) => a.feedback(positive, negative),
            BuiltAdvisor::All(a, _) => a.feedback(positive, negative),
        }
    }

    fn name(&self) -> String {
        match self {
            BuiltAdvisor::Wfit(w) => w.name(),
            BuiltAdvisor::Bc(b) => b.name(),
            BuiltAdvisor::Bandit(b) => b.name(),
            BuiltAdvisor::NoIndex(a) => a.name(),
            BuiltAdvisor::All(a, _) => a.name(),
        }
    }

    fn safety_fallbacks(&self) -> u64 {
        match self {
            BuiltAdvisor::Bandit(b) => IndexAdvisor::safety_fallbacks(b),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FeedbackEvent;

    fn tiny_spec(name: &str) -> ScenarioSpec {
        ScenarioSpec::new(name, 3)
            .cell(CellSpec::new(
                "WFIT",
                AdvisorSpec::WfitFixed { state_cnt: 500 },
            ))
            .cell(CellSpec::new("NO-INDEX", AdvisorSpec::NoIndex))
    }

    #[test]
    fn replay_produces_one_cell_report_per_spec_cell() {
        let report = run_scenario(tiny_spec("tiny"));
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.statements, 24);
        assert!(report.opt_total > 0.0);
        assert!(report.candidates > 0);
        let wfit = report.cell("WFIT").unwrap();
        assert!(wfit.opt_ratio > 0.0 && wfit.opt_ratio <= 1.05);
        assert!(wfit.whatif_calls > 0);
        assert!(wfit.states_tracked > 0);
        let noop = report.cell("NO-INDEX").unwrap();
        assert_eq!(noop.transition_cost, 0.0);
        assert_eq!(noop.transitions, 0);
        assert_eq!(noop.final_config_size, 0);
        // OPT is a lower bound for every cell.
        for cell in &report.cells {
            assert!(report.opt_total <= cell.total_work + 1e-6, "{}", cell.label);
        }
    }

    #[test]
    fn replay_is_deterministic_across_parallel_runs() {
        let a = run_scenario(tiny_spec("det"));
        let b = run_scenario(tiny_spec("det"));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn sequential_run_matches_parallel_run_exactly() {
        let ctx = ScenarioContext::prepare(tiny_spec("seq"));
        let parallel = ctx.run();
        let sequential = ctx.run_sequential();
        // Identical deterministic JSON: wall time is the only difference and
        // it is excluded from the stable rendering.
        assert_eq!(parallel.to_json(), sequential.to_json());
    }

    #[test]
    fn scripted_feedback_resolves_candidate_ranks() {
        let spec = ScenarioSpec::new("scripted", 3).cell(
            CellSpec::new("VOTED", AdvisorSpec::WfitFixed { state_cnt: 500 }).with_feedback(
                FeedbackSpec::Scripted(vec![FeedbackEvent {
                    position: 1,
                    approve_ranks: vec![0],
                    reject_ranks: vec![],
                }]),
            ),
        );
        let ctx = ScenarioContext::prepare(spec);
        let top = ctx.selection().candidates[0];
        let stream = ctx.feedback_stream(&ctx.spec.cells[0].feedback);
        let (pos, neg) = stream.at(1).expect("vote scheduled at statement 1");
        assert!(pos.contains(top));
        assert!(neg.is_empty());
        // Out-of-range ranks are ignored rather than panicking.
        let oob = ctx.feedback_stream(&FeedbackSpec::Scripted(vec![FeedbackEvent {
            position: 2,
            approve_ranks: vec![9999],
            reject_ranks: vec![9999],
        }]));
        assert!(oob.is_empty() || oob.at(2).is_none_or(|(p, n)| p.is_empty() && n.is_empty()));
    }

    #[test]
    fn lagged_cell_only_transitions_at_lag_points() {
        let spec = ScenarioSpec::new("lag", 3)
            .cell(CellSpec::new("LAG 8", AdvisorSpec::WfitFixed { state_cnt: 500 }).with_lag(8));
        let ctx = ScenarioContext::prepare(spec);
        let cell = ctx.run_cell(&ctx.spec.cells[0]);
        assert_eq!(cell.label, "LAG 8");
        // Churn is bounded by the number of acceptance points.
        assert!(cell.transitions <= ctx.bench.len() / 8);
    }

    #[test]
    fn extra_state_cnt_selections_are_prepared_on_demand() {
        let spec = ScenarioSpec::new("multi", 2)
            .cell(CellSpec::new(
                "W-100",
                AdvisorSpec::WfitFixed { state_cnt: 100 },
            ))
            .cell(CellSpec::new(
                "W-500",
                AdvisorSpec::WfitFixed { state_cnt: 500 },
            ));
        let ctx = ScenarioContext::prepare(spec);
        assert_eq!(ctx.selections.len(), 2);
        assert!(ctx
            .selection_for(100)
            .partition
            .iter()
            .all(|p| !p.is_empty()));
        let report = ctx.run();
        assert_eq!(report.cells.len(), 2);
    }
}
