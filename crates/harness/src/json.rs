//! Re-export of the workspace JSON codec.
//!
//! The writer/parser used for golden-run regression files historically lived
//! here; it was promoted to [`wfit_core::json`] so the service's durable
//! snapshot/WAL codec (`service::persist`) can share the exact same
//! deterministic, lossless, non-finite-rejecting implementation without a
//! dependency cycle.  This module keeps the `harness::json::*` paths alive.

pub use wfit_core::json::{diff_with_tolerance, Json, JsonError};
