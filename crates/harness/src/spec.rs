//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] fully determines an experiment: the workload (phases,
//! drift, update fractions, statements per phase, RNG seed), the offline
//! candidate selection, and a fleet of advisor *cells* — each an advisor
//! variant paired with a feedback script and an acceptance policy.  Replaying
//! the same spec always produces the same [`crate::RunReport`], which is what
//! makes golden-run regression testing possible.

use wfit_core::config::WfitConfig;
use workload::{default_phases, BenchmarkSpec, PhaseSpec};

/// Which advisor a cell runs.
#[derive(Debug, Clone)]
pub enum AdvisorSpec {
    /// WFIT with the fixed offline partition mined for `state_cnt`
    /// (the paper's Figures 8–11 setup).
    WfitFixed {
        /// `stateCnt` used both for the offline partition and the advisor.
        state_cnt: u64,
    },
    /// WFIT with every candidate in its own part (the WFIT-IND variant).
    WfitIndependent,
    /// Full WFIT with online candidate/partition maintenance (`chooseCands`
    /// enabled, Figure 12's AUTO).
    WfitAuto {
        /// Algorithm knobs (`idxCnt`, `stateCnt`, `histSize`, …).
        config: WfitConfig,
    },
    /// The Bruno–Chaudhuri baseline over the offline candidate set.
    Bc,
    /// The C²UCB contextual bandit over the offline candidate set, with a
    /// safety gate falling back to the current configuration.
    Bandit {
        /// Seed for the deterministic splitmix64 tie-break hash.
        seed: u64,
    },
    /// Never recommends anything.
    NoIndex,
    /// Recommends every offline candidate from the first statement.
    AllCandidates,
}

/// A scripted DBA-feedback event, declarative over the offline candidate
/// *ranks* (position in the offline `topIndices` ordering) so that specs do
/// not depend on the numeric `IndexId`s a particular run happens to intern.
#[derive(Debug, Clone)]
pub struct FeedbackEvent {
    /// 1-based statement position after which the votes are delivered.
    pub position: usize,
    /// Positive votes: ranks into the offline candidate list.
    pub approve_ranks: Vec<usize>,
    /// Negative votes: ranks into the offline candidate list.
    pub reject_ranks: Vec<usize>,
}

/// The feedback script of a cell.
#[derive(Debug, Clone, Default)]
pub enum FeedbackSpec {
    /// No feedback (`V = ∅`).
    #[default]
    None,
    /// `V_GOOD`: votes mirroring OPT's create/drop schedule (Figure 9's
    /// prescient DBA).
    OptGood,
    /// `V_BAD`: the mirror image of `V_GOOD`.
    OptBad,
    /// Explicit scripted events.
    Scripted(Vec<FeedbackEvent>),
}

/// How often the DBA adopts the recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AcceptanceSpec {
    /// After every statement (Figures 8–10, 12).
    #[default]
    Immediate,
    /// Only every `T` statements (Figure 11's `LAG T`).
    EveryT(usize),
}

/// One (advisor × options) cell of a scenario.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Display label (also the key in golden reports).
    pub label: String,
    /// The advisor variant.
    pub advisor: AdvisorSpec,
    /// Scheduled DBA feedback.
    pub feedback: FeedbackSpec,
    /// Acceptance policy.
    pub acceptance: AcceptanceSpec,
    /// Whether adopting a recommendation also delivers implicit votes for the
    /// created/dropped indices (the lease-renewal reading of delayed
    /// acceptance, used by Figure 11).
    pub implicit_feedback_on_accept: bool,
}

impl CellSpec {
    /// A cell with immediate acceptance and no feedback.
    pub fn new(label: impl Into<String>, advisor: AdvisorSpec) -> Self {
        Self {
            label: label.into(),
            advisor,
            feedback: FeedbackSpec::None,
            acceptance: AcceptanceSpec::Immediate,
            implicit_feedback_on_accept: false,
        }
    }

    /// Set the feedback script.
    pub fn with_feedback(mut self, feedback: FeedbackSpec) -> Self {
        self.feedback = feedback;
        self
    }

    /// Set the acceptance policy (with implicit feedback on accept when
    /// lagged, matching the paper's Figure 11 setup).
    pub fn with_lag(mut self, lag: usize) -> Self {
        if lag <= 1 {
            self.acceptance = AcceptanceSpec::Immediate;
            self.implicit_feedback_on_accept = false;
        } else {
            self.acceptance = AcceptanceSpec::EveryT(lag);
            self.implicit_feedback_on_accept = true;
        }
        self
    }
}

/// A fully declarative experiment: workload + candidate selection + advisor
/// fleet.  The workload phase length is an **explicit parameter** — there is
/// no environment-variable side channel in the harness, so concurrently
/// running scenarios can never race on process-global state.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and golden file names).
    pub name: String,
    /// Statements per phase (the paper uses 200).
    pub statements_per_phase: usize,
    /// Workload RNG seed; the whole scenario is deterministic given this.
    pub seed: u64,
    /// The workload phases (primary/secondary data set drift and update
    /// fractions per phase).
    pub phases: Vec<PhaseSpec>,
    /// `stateCnt` for the default offline candidate selection, the stable
    /// partition and the OPT oracle.
    pub selection_state_cnt: u64,
    /// The advisor fleet.
    pub cells: Vec<CellSpec>,
}

impl ScenarioSpec {
    /// A scenario over the paper's eight-phase workload with the default
    /// seed and `stateCnt = 500`.
    pub fn new(name: impl Into<String>, statements_per_phase: usize) -> Self {
        Self {
            name: name.into(),
            statements_per_phase,
            seed: BenchmarkSpec::default().seed,
            phases: default_phases(),
            selection_state_cnt: 500,
            cells: Vec::new(),
        }
    }

    /// Override the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the phase structure (drift pattern and update fractions).
    pub fn with_phases(mut self, phases: Vec<PhaseSpec>) -> Self {
        self.phases = phases;
        self
    }

    /// Add a cell to the fleet.
    pub fn cell(mut self, cell: CellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// The workload specification this scenario replays.
    pub fn benchmark_spec(&self) -> BenchmarkSpec {
        BenchmarkSpec {
            statements_per_phase: self.statements_per_phase,
            seed: self.seed,
            phases: self.phases.clone(),
        }
    }

    /// Total number of statements.
    pub fn total_statements(&self) -> usize {
        self.statements_per_phase * self.phases.len()
    }

    /// Every distinct `stateCnt` that needs an offline selection: the
    /// scenario default plus any `WfitFixed` overrides.
    pub fn state_cnts_needed(&self) -> Vec<u64> {
        let mut cnts = vec![self.selection_state_cnt];
        for cell in &self.cells {
            if let AdvisorSpec::WfitFixed { state_cnt } = cell.advisor {
                if !cnts.contains(&state_cnt) {
                    cnts.push(state_cnt);
                }
            }
        }
        cnts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_cells_and_options() {
        let spec = ScenarioSpec::new("t", 5)
            .with_seed(7)
            .cell(CellSpec::new(
                "a",
                AdvisorSpec::WfitFixed { state_cnt: 500 },
            ))
            .cell(
                CellSpec::new("b", AdvisorSpec::Bc)
                    .with_feedback(FeedbackSpec::OptGood)
                    .with_lag(10),
            );
        assert_eq!(spec.cells.len(), 2);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.total_statements(), 40);
        assert_eq!(spec.cells[1].acceptance, AcceptanceSpec::EveryT(10));
        assert!(spec.cells[1].implicit_feedback_on_accept);
        assert!(matches!(spec.cells[1].feedback, FeedbackSpec::OptGood));
    }

    #[test]
    fn lag_of_one_is_immediate() {
        let cell = CellSpec::new("x", AdvisorSpec::NoIndex).with_lag(1);
        assert_eq!(cell.acceptance, AcceptanceSpec::Immediate);
        assert!(!cell.implicit_feedback_on_accept);
    }

    #[test]
    fn state_cnts_needed_dedups() {
        let spec = ScenarioSpec::new("t", 5)
            .cell(CellSpec::new(
                "a",
                AdvisorSpec::WfitFixed { state_cnt: 500 },
            ))
            .cell(CellSpec::new(
                "b",
                AdvisorSpec::WfitFixed { state_cnt: 100 },
            ))
            .cell(CellSpec::new(
                "c",
                AdvisorSpec::WfitFixed { state_cnt: 100 },
            ));
        assert_eq!(spec.state_cnts_needed(), vec![500, 100]);
    }

    #[test]
    fn benchmark_spec_matches_scenario() {
        let spec = ScenarioSpec::new("t", 9).with_seed(3);
        let b = spec.benchmark_spec();
        assert_eq!(b.statements_per_phase, 9);
        assert_eq!(b.seed, 3);
        assert_eq!(b.phases.len(), 8);
    }
}
