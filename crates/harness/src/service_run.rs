//! Deterministic multi-tenant **service** scenarios.
//!
//! Where [`crate::runner`] replays one workload against a fleet of advisors
//! through the offline [`wfit_core::Evaluator`], this module replays *many*
//! workloads — one per tenant — through the long-running
//! [`service::TuningService`]: statements and votes are submitted as
//! [`service::Event`]s interleaved round-robin across tenants, sharded by
//! tenant id, and drained by the service's scoped worker pool.  The result
//! is the same structured [`RunReport`], with one cell per
//! (tenant × session) and a [`ServiceSummary`] carrying the service-level
//! metrics (event counts, shared-cache hit rate, throughput, latency).
//!
//! Determinism contract: per-tenant event order is fixed by the spec,
//! every session replays its tenant's events in that order (the
//! work-stealing scheduler moves whole session-runs, never splits one),
//! and the steal plan is a pure function of the queue-depth snapshot — so
//! every cost-derived metric and every scheduler counter is bit-identical
//! across runs at the same seed, which is what lets the multi-tenant
//! scenarios (including the skewed, stealing one) live in the golden
//! regression suite.  With stealing enabled and a shared cache, only the
//! cache's hit/miss *split* is timing-dependent; the skewed golden
//! scenario therefore runs the uncached control arm.

use std::sync::Arc;

use advisors::{compute_optimal, OptSchedule};
use advisors::{BanditAdvisor, BanditConfig, BruchoChaudhuriAdvisor};
use service::{AdaptiveCacheConfig, Event, IngressConfig, TenantEnv, TenantOptions, TuningService};
use simdb::cache::CachePolicy;
use simdb::index::IndexSet;
use wfit_core::candidates::{offline_selection, OfflineSelection};
use wfit_core::config::WfitConfig;
use wfit_core::{IndexAdvisor, Wfit};
use workload::{Benchmark, BenchmarkSpec};

use crate::report::{CellReport, RunReport, ServiceSummary};

/// Which advisor one session of every tenant runs.
#[derive(Debug, Clone)]
pub enum ServiceSessionSpec {
    /// WFIT with the tenant's fixed offline partition mined for `state_cnt`.
    WfitFixed {
        /// `stateCnt` for the offline partition and the advisor.
        state_cnt: u64,
    },
    /// WFIT with every offline candidate in its own part (WFIT-IND).
    WfitIndependent,
    /// The Bruno–Chaudhuri baseline over the tenant's offline candidates.
    Bc,
    /// The C²UCB bandit over the tenant's offline candidates (safety-gated).
    Bandit {
        /// Seed for the deterministic splitmix64 tie-break hash.
        seed: u64,
    },
}

impl ServiceSessionSpec {
    fn label(&self) -> String {
        match self {
            ServiceSessionSpec::WfitFixed { state_cnt } => format!("WFIT-{state_cnt}"),
            ServiceSessionSpec::WfitIndependent => "WFIT-IND".to_string(),
            ServiceSessionSpec::Bc => "BC".to_string(),
            ServiceSessionSpec::Bandit { .. } => "BANDIT".to_string(),
        }
    }
}

/// A declarative multi-tenant service scenario: `tenants` independent
/// workload streams (same phase structure, per-tenant seeds derived from
/// `seed`), each served by the same session fleet, processed by one
/// [`service::TuningService`].
#[derive(Debug, Clone)]
pub struct ServiceScenarioSpec {
    /// Scenario name (used in reports and golden file names).
    pub name: String,
    /// Number of tenants (independent databases + workloads).
    pub tenants: usize,
    /// Statements per phase of every tenant's workload.
    pub statements_per_phase: usize,
    /// Base seed; tenant `t` replays seed `mix(seed, t)`.
    pub seed: u64,
    /// The session fleet instantiated for every tenant.
    pub sessions: Vec<ServiceSessionSpec>,
    /// `stateCnt` for the offline candidate selection and the OPT oracle.
    pub selection_state_cnt: u64,
    /// Whether tenants get a shared what-if cache (`false` is the control
    /// arm: every request runs the optimizer).
    pub shared_cache: bool,
    /// Deliver a vote event (approve the tenant's top offline candidate,
    /// reject its last) after every `feedback_every`-th statement; 0
    /// disables feedback.
    pub feedback_every: usize,
    /// Capacity bound of each tenant's shared what-if cache; 0 keeps the
    /// cache unbounded (the historical behaviour).  Ignored when
    /// `shared_cache` is false.
    pub cache_capacity: usize,
    /// Coalesce up to this many consecutive queries of a tenant into one
    /// session-major batch; 1 reproduces event-at-a-time draining.
    pub batch_size: usize,
    /// Share built index benefit graphs across each tenant's sessions
    /// through a per-tenant `IbgStore`.  Honored for the uncached control
    /// arm too (graph dedup works with or without a cost cache underneath).
    pub ibg_reuse: bool,
    /// Worker threads draining the service; 0 (the default) uses one worker
    /// per tenant — the historical behaviour.
    pub workers: usize,
    /// Enable the cross-tenant work-stealing scheduler: an idle worker
    /// takes whole session-runs from the most-loaded bin.  Session state
    /// stays bit-identical; steal counters are a pure function of queue
    /// depths.  With a shared cache the hit/miss *split* becomes
    /// timing-dependent, so golden scenarios that enable stealing also
    /// disable the shared cache (see
    /// [`crate::scenarios::service_skew_mini`]).
    pub steal: bool,
    /// Event-skew multiplier for tenant 0: the "hot" tenant replays
    /// `skew × statements_per_phase` statements per phase while every other
    /// tenant replays `statements_per_phase`.  1 (the default) keeps all
    /// tenants equal.
    pub skew: usize,
    /// Per-tenant ingress depth limit (0 = unbounded, the historical
    /// default).  Setting either depth switches the replay into the
    /// **overload shape**: events are offered in waves through the
    /// non-blocking admission gate — `offered_multiplier ×` the capacity
    /// per tenant between drain rounds — so offered load exceeds drain
    /// capacity and the gate must shed deterministically.
    pub per_tenant_depth: usize,
    /// Global ingress budget across all tenants (0 = unbounded).
    pub global_depth: usize,
    /// How many times the admission capacity each tenant offers between
    /// drain rounds in the overload shape (≥ 1; inert without a depth
    /// limit).
    pub offered_multiplier: usize,
    /// Attach durable persistence (snapshot + event WAL in a scratch
    /// directory, removed when the run finishes).  Switches the replay into
    /// the **wave shape**: events are submitted in waves of
    /// [`PERSIST_WAVE`], each wave drained by one `poll` round (= one WAL
    /// record), with a snapshot every [`PERSIST_SNAPSHOT_EVERY`] waves.
    /// Only the unbounded shape supports persistence.
    pub persist: bool,
    /// Kill-and-restore point for persistent replays: before submitting
    /// wave `crash_at` the live service is dropped (a clean kill between
    /// drain rounds) and a freshly assembled host recovers it from the
    /// snapshot + WAL.  The recovered run must render the same report as an
    /// uninterrupted one — that equality is what the restore golden pins.
    pub crash_at: Option<usize>,
    /// Eviction policy of each tenant's bounded shared cache
    /// ([`CachePolicy::Clock`] is the historical default;
    /// [`CachePolicy::Arc`] adds scan resistance).  Inert while the cache
    /// is unbounded or disabled.
    pub cache_policy: CachePolicy,
    /// Bounds for the daemon's working-set capacity controller; `None`
    /// (the default) keeps every cache at its configured capacity.
    pub adaptive_cache: Option<AdaptiveCacheConfig>,
    /// Global cache-memory budget (total entries across tenants) the
    /// capacity controller must respect; 0 leaves growth unbudgeted.
    pub cache_budget: usize,
    /// Cut scheduler epochs every this-many completed session-runs and
    /// re-plan the rest of each drain round against the weight every
    /// worker actually absorbed; 0 (the default) keeps one-shot planning.
    pub epoch_runs: usize,
    /// Adversarial **hot-flip** shape: tenants `0` and `tenants-1` both
    /// carry the skew multiplier, but tenant 0 spends it in the first half
    /// of the run (emitting `2·skew−1` statements per row) while the last
    /// tenant mirrors it in the second half — the hot spot migrates
    /// mid-run.  Both hot tenants also replay a **cache-flushing scan**: a
    /// contiguous burst of final-phase statements delivered once, mid-run,
    /// ahead of their natural position.  Each row is drained by exactly
    /// one `poll` round, so per-round controllers (capacity adaptation,
    /// epoch re-planning) see the flip as it happens.
    pub hot_flip: bool,
}

/// Events submitted per wave of a persistent ([`ServiceScenarioSpec::persist`])
/// replay; each wave is drained by exactly one `poll` round and therefore
/// logs exactly one WAL record.
pub const PERSIST_WAVE: usize = 16;

/// A persistent replay snapshots the service every this-many waves.
pub const PERSIST_SNAPSHOT_EVERY: usize = 3;

impl ServiceScenarioSpec {
    /// A scenario with the default fleet (WFIT-500, WFIT-IND, BC per
    /// tenant), shared caches and no feedback.
    pub fn new(name: impl Into<String>, tenants: usize, statements_per_phase: usize) -> Self {
        Self {
            name: name.into(),
            tenants,
            statements_per_phase,
            seed: BenchmarkSpec::default().seed,
            sessions: vec![
                ServiceSessionSpec::WfitFixed { state_cnt: 500 },
                ServiceSessionSpec::WfitIndependent,
                ServiceSessionSpec::Bc,
            ],
            selection_state_cnt: 500,
            shared_cache: true,
            feedback_every: 0,
            cache_capacity: 0,
            batch_size: 1,
            ibg_reuse: false,
            workers: 0,
            steal: false,
            skew: 1,
            per_tenant_depth: 0,
            global_depth: 0,
            offered_multiplier: 1,
            persist: false,
            crash_at: None,
            cache_policy: CachePolicy::Clock,
            adaptive_cache: None,
            cache_budget: 0,
            epoch_runs: 0,
            hot_flip: false,
        }
    }

    /// Override the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Rename the scenario (reports and golden files use the name).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replace the per-tenant session fleet.
    pub fn with_sessions(mut self, sessions: Vec<ServiceSessionSpec>) -> Self {
        self.sessions = sessions;
        self
    }

    /// Enable or disable the shared what-if caches.
    pub fn with_shared_cache(mut self, shared: bool) -> Self {
        self.shared_cache = shared;
        self
    }

    /// Add (or remove) a C²UCB bandit session to every tenant's fleet — the
    /// `WFIT_BANDIT` arm of the service-throughput bench.  The tie-break
    /// seed is derived from the scenario's base seed, so the arm is fully
    /// reproducible.
    pub fn with_bandit(mut self, enabled: bool) -> Self {
        let is_bandit = |s: &ServiceSessionSpec| matches!(s, ServiceSessionSpec::Bandit { .. });
        if enabled {
            if !self.sessions.iter().any(is_bandit) {
                self.sessions.push(ServiceSessionSpec::Bandit {
                    seed: self.seed ^ 0xC2CB,
                });
            }
        } else {
            self.sessions.retain(|s| !is_bandit(s));
        }
        self
    }

    /// Whether the fleet includes a bandit session (set via [`Self::with_bandit`]).
    pub fn has_bandit(&self) -> bool {
        self.sessions
            .iter()
            .any(|s| matches!(s, ServiceSessionSpec::Bandit { .. }))
    }

    /// Schedule periodic feedback events.
    pub fn with_feedback_every(mut self, every: usize) -> Self {
        self.feedback_every = every;
        self
    }

    /// Bound each tenant's shared cache to `capacity` entries (0 =
    /// unbounded).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Set the service's query-batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Enable or disable cross-session IBG reuse.
    pub fn with_ibg_reuse(mut self, reuse: bool) -> Self {
        self.ibg_reuse = reuse;
        self
    }

    /// Drain with `workers` worker threads (0 = one per tenant).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enable or disable the work-stealing scheduler.
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Make tenant 0 "hot": it replays `skew ×` the statements of every
    /// other tenant (values < 1 are clamped to 1).
    pub fn with_skew(mut self, skew: usize) -> Self {
        self.skew = skew.max(1);
        self
    }

    /// Bound the service ingress (see [`service::IngressConfig`]): cap each
    /// tenant's queue at `per_tenant` and the whole ingress at `global`
    /// pending events (0 disables either limit).  Any bound switches the
    /// replay into the overload shape — see
    /// [`ServiceScenarioSpec::per_tenant_depth`].
    pub fn with_ingress_depths(mut self, per_tenant: usize, global: usize) -> Self {
        self.per_tenant_depth = per_tenant;
        self.global_depth = global;
        self
    }

    /// Offer `multiplier ×` the admission capacity per tenant between drain
    /// rounds in the overload shape (values < 1 are clamped to 1).
    pub fn with_offered_multiplier(mut self, multiplier: usize) -> Self {
        self.offered_multiplier = multiplier.max(1);
        self
    }

    /// Attach durable persistence (snapshot + WAL) to the replay.
    pub fn with_persist(mut self, persist: bool) -> Self {
        self.persist = persist;
        self
    }

    /// Kill the service before wave `wave` and restore it from disk
    /// (implies [`ServiceScenarioSpec::with_persist`]).
    pub fn with_crash_at(mut self, wave: usize) -> Self {
        self.persist = true;
        self.crash_at = Some(wave);
        self
    }

    /// Select the eviction policy of every tenant's bounded cache.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Enable the working-set capacity controller with the given bounds.
    pub fn with_adaptive_cache(mut self, adaptive: AdaptiveCacheConfig) -> Self {
        self.adaptive_cache = Some(adaptive);
        self
    }

    /// Bound the capacity controller's total growth across tenants.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.cache_budget = budget;
        self
    }

    /// Re-plan drain rounds at epoch boundaries cut every `runs` completed
    /// session-runs (0 disables epoch planning).
    pub fn with_epoch_runs(mut self, runs: usize) -> Self {
        self.epoch_runs = runs;
        self
    }

    /// Switch the replay into the adversarial hot-flip shape (see
    /// [`ServiceScenarioSpec::hot_flip`]).
    pub fn with_hot_flip(mut self, hot_flip: bool) -> Self {
        self.hot_flip = hot_flip;
        self
    }

    /// Whether the spec replays in the bounded/overload shape.
    pub fn is_bounded(&self) -> bool {
        self.per_tenant_depth > 0 || self.global_depth > 0
    }

    /// The seed tenant `t` generates its workload from (a splitmix64 step
    /// over the base seed, so tenant workloads are decorrelated but fully
    /// reproducible).
    pub fn tenant_seed(&self, tenant: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Statements per phase for one tenant (tenant 0 carries the skew
    /// multiplier; in the hot-flip shape the last tenant carries it too).
    pub fn statements_per_phase_for(&self, tenant: usize) -> usize {
        let hot = tenant == 0 || (self.hot_flip && tenant + 1 == self.tenants);
        if hot {
            self.statements_per_phase * self.skew.max(1)
        } else {
            self.statements_per_phase
        }
    }

    /// Statements one tenant replays over the whole run.
    pub fn statements_for_tenant(&self, tenant: usize) -> usize {
        self.statements_per_phase_for(tenant) * workload::default_phases().len()
    }

    /// Statements per unskewed tenant.
    pub fn statements_per_tenant(&self) -> usize {
        self.statements_per_phase * workload::default_phases().len()
    }

    /// Statements across all tenants (skew included).
    pub fn total_statements(&self) -> usize {
        (0..self.tenants)
            .map(|t| self.statements_for_tenant(t))
            .sum()
    }

    /// The worker count the service is built with (0 resolves to one worker
    /// per tenant).
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            self.tenants
        } else {
            self.workers
        }
    }
}

/// A unique scratch directory for one persistent replay's snapshot + WAL
/// (unique per process *and* per call, so parallel test runs of the same
/// scenario never share state).
fn persist_scratch_dir(name: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wfit-harness-{name}-{}-{n}", std::process::id()))
}

/// Delivery order of a hot tenant's statement stream in the hot-flip
/// shape: identity, except that a contiguous block of final-phase
/// positions (an eighth of the stream) is pulled forward to the midpoint —
/// a burst of statements the tenant sees exactly once, far from their
/// natural neighbourhood, flooding a recency-only cache while a
/// scan-resistant one keeps its frequent set.  Every position is still
/// delivered exactly once.
fn scan_order(len: usize) -> Vec<usize> {
    let scan = len / 8;
    let half = (len - scan) / 2;
    let mut order: Vec<usize> = (0..half).collect();
    order.extend(len - scan..len);
    order.extend(half..len - scan);
    order
}

/// The hot-flip submission schedule, grouped into rows (one drain round
/// each): tenant 0 emits `2·skew−1` statements per row for the first half
/// of the run and 1 afterwards, the last tenant mirrors it, and every
/// other tenant emits 1 per row — total volume matches
/// [`ServiceScenarioSpec::statements_per_phase_for`] exactly.  Votes keep
/// the spec's per-tenant cadence.
fn hot_flip_rows(
    spec: &ServiceScenarioSpec,
    prepared: &[PreparedTenant],
) -> Vec<Vec<(usize, ServiceEventKind)>> {
    let order: Vec<Vec<usize>> = prepared
        .iter()
        .enumerate()
        .map(|(t, prep)| {
            let hot = t == 0 || t + 1 == spec.tenants;
            if hot && spec.skew > 1 {
                scan_order(prep.statements.len())
            } else {
                (0..prep.statements.len()).collect()
            }
        })
        .collect();
    let half = spec.statements_per_tenant() / 2;
    let burst = 2 * spec.skew.max(1) - 1;
    let mut next = vec![0usize; spec.tenants];
    let mut delivered = vec![0usize; spec.tenants];
    let mut rows = Vec::new();
    while (0..spec.tenants).any(|t| next[t] < order[t].len()) {
        let row = rows.len();
        let mut events = Vec::new();
        for t in 0..spec.tenants {
            let first_half_hot = t == 0;
            let second_half_hot = t + 1 == spec.tenants;
            let quota = if (first_half_hot && row < half) || (second_half_hot && row >= half) {
                burst
            } else {
                1
            };
            for _ in 0..quota {
                if next[t] >= order[t].len() {
                    break;
                }
                events.push((t, ServiceEventKind::Query(order[t][next[t]])));
                next[t] += 1;
                delivered[t] += 1;
                if spec.feedback_every > 0 && delivered[t].is_multiple_of(spec.feedback_every) {
                    events.push((t, ServiceEventKind::Vote));
                }
            }
        }
        rows.push(events);
    }
    rows
}

/// One tenant's prepared state: the database (ready to be shared with the
/// service), the workload statements, the offline selections and the OPT
/// reference curve.
struct PreparedTenant {
    db: Arc<simdb::Database>,
    statements: Vec<simdb::Statement>,
    selections: Vec<(u64, OfflineSelection)>,
    opt: OptSchedule,
}

impl PreparedTenant {
    fn prepare(spec: &ServiceScenarioSpec, tenant: usize) -> Self {
        let bench = Benchmark::generate(BenchmarkSpec {
            statements_per_phase: spec.statements_per_phase_for(tenant),
            seed: spec.tenant_seed(tenant),
            phases: workload::default_phases(),
        });
        let mut state_cnts = vec![spec.selection_state_cnt];
        for session in &spec.sessions {
            if let ServiceSessionSpec::WfitFixed { state_cnt } = session {
                if !state_cnts.contains(state_cnt) {
                    state_cnts.push(*state_cnt);
                }
            }
        }
        let selections: Vec<(u64, OfflineSelection)> = state_cnts
            .into_iter()
            .map(|cnt| {
                let config = WfitConfig::with_state_cnt(cnt);
                (
                    cnt,
                    offline_selection(&bench.db, &bench.statements, &config),
                )
            })
            .collect();
        let opt = compute_optimal(
            &bench.db,
            &bench.statements,
            &selections[0].1.partition,
            &IndexSet::empty(),
        );
        // Move the database out of the benchmark: its index registry holds
        // the candidate ids the selections refer to, so the *same* instance
        // must back the service tenant.
        let Benchmark { db, statements, .. } = bench;
        Self {
            db: Arc::new(db),
            statements,
            selections,
            opt,
        }
    }

    fn selection_for(&self, state_cnt: u64) -> &OfflineSelection {
        self.selections
            .iter()
            .find(|(c, _)| *c == state_cnt)
            .map(|(_, s)| s)
            .expect("offline selection prepared for every requested stateCnt")
    }

    fn default_selection(&self) -> &OfflineSelection {
        &self.selections[0].1
    }
}

fn build_advisor(
    spec: &ServiceSessionSpec,
    prepared: &PreparedTenant,
    env: TenantEnv,
) -> Box<dyn IndexAdvisor + Send> {
    match spec {
        ServiceSessionSpec::WfitFixed { state_cnt } => Box::new(Wfit::with_fixed_partition(
            env,
            WfitConfig::with_state_cnt(*state_cnt),
            prepared.selection_for(*state_cnt).partition.clone(),
            IndexSet::empty(),
        )),
        ServiceSessionSpec::WfitIndependent => {
            let partition = prepared
                .default_selection()
                .candidates
                .iter()
                .map(|&c| vec![c])
                .collect();
            Box::new(
                Wfit::with_fixed_partition(
                    env,
                    WfitConfig::independent(),
                    partition,
                    IndexSet::empty(),
                )
                .with_name("WFIT-IND"),
            )
        }
        ServiceSessionSpec::Bc => Box::new(BruchoChaudhuriAdvisor::new(
            env,
            prepared.default_selection().candidates.clone(),
            &IndexSet::empty(),
        )),
        ServiceSessionSpec::Bandit { seed } => Box::new(BanditAdvisor::new(
            env,
            prepared.default_selection().candidates.clone(),
            BanditConfig::with_seed(*seed),
        )),
    }
}

/// One entry of a tenant's scheduled replay stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEventKind {
    /// The tenant's `pos`-th workload statement.
    Query(usize),
    /// A scheduled DBA vote (approve the tenant's top offline candidate,
    /// reject its last).
    Vote,
}

/// Which scheduled events actually reached the sessions of a bounded run —
/// per tenant, in delivery order.  In the overload shape the admission gate
/// rejects overflow queries and votes displace queued ones; the trace is
/// the surviving per-tenant stream, exactly what
/// [`run_service_control`] needs to prove the survivors' costs are
/// bit-equal to an un-shed control run.
#[derive(Debug, Clone, Default)]
pub struct ServiceTrace {
    /// Surviving events per tenant (everything, for an unbounded run).
    pub survivors: Vec<Vec<ServiceEventKind>>,
}

impl ServiceTrace {
    /// Queries that reached the sessions of one tenant.
    pub fn queries(&self, tenant: usize) -> usize {
        self.survivors[tenant]
            .iter()
            .filter(|k| matches!(k, ServiceEventKind::Query(_)))
            .count()
    }

    /// Votes that reached the sessions of one tenant.
    pub fn votes(&self, tenant: usize) -> usize {
        self.survivors[tenant].len() - self.queries(tenant)
    }
}

/// Replay a multi-tenant service scenario into a [`RunReport`].
///
/// Preparation (workload generation, offline analysis, OPT) runs one thread
/// per tenant — tenants are fully independent, so this is deterministic —
/// and the event stream is then pushed through a [`TuningService`]: in a
/// single batch for unbounded specs (the historical behaviour), or in
/// overload waves through the admission gate when a depth limit is set
/// (see [`ServiceScenarioSpec::per_tenant_depth`]).
pub fn run_service_scenario(spec: &ServiceScenarioSpec) -> RunReport {
    run_internal(spec, None).0
}

/// Like [`run_service_scenario`], additionally returning the
/// [`ServiceTrace`] of events that survived admission — the input for
/// [`run_service_control`].
pub fn run_service_scenario_traced(spec: &ServiceScenarioSpec) -> (RunReport, ServiceTrace) {
    run_internal(spec, None)
}

/// Replay only the events that survived a bounded run, through an
/// **unbounded** service built from the same spec.  Because shedding
/// happens strictly at admission — a shed event simply never existed as far
/// as the sessions are concerned — the control run's cost cells must be
/// bit-equal to the bounded run's (regression-tested in
/// `tests/scenarios.rs`).
pub fn run_service_control(spec: &ServiceScenarioSpec, trace: &ServiceTrace) -> RunReport {
    let mut control = spec.clone();
    control.name = format!("{}-control", spec.name);
    control.per_tenant_depth = 0;
    control.global_depth = 0;
    run_internal(&control, Some(trace)).0
}

fn run_internal(
    spec: &ServiceScenarioSpec,
    replay: Option<&ServiceTrace>,
) -> (RunReport, ServiceTrace) {
    assert!(
        spec.tenants > 0,
        "service scenario needs at least one tenant"
    );
    assert!(
        !spec.sessions.is_empty(),
        "service scenario needs at least one session per tenant"
    );
    assert!(
        replay.is_none() || !spec.is_bounded(),
        "survivor replays run unbounded (they are the control arm)"
    );
    assert!(
        !(spec.persist && spec.is_bounded()),
        "persistence is supported only for the unbounded shape"
    );
    assert!(
        spec.crash_at.is_none() || spec.persist,
        "a crash point needs persistence to recover from"
    );
    assert!(
        !spec.hot_flip || (!spec.is_bounded() && !spec.persist && replay.is_none()),
        "the hot-flip shape is its own submission schedule — it composes with \
         neither the overload nor the persistence shape"
    );

    // Per-tenant offline preparation, in parallel (order restored by index).
    let prepared: Vec<PreparedTenant> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.tenants)
            .map(|t| scope.spawn(move || PreparedTenant::prepare(spec, t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant preparation panicked"))
            .collect()
    });

    // Assemble the service: one tenant + fleet per prepared workload, all
    // backed by the prepared database instances (whose registries hold the
    // candidate ids the offline selections refer to).  A persistent replay
    // that crashes mid-run reassembles the *same* host through this closure
    // before restoring — the restore contract is "same databases, same
    // builder closures, same registration order".
    let assemble = || {
        let mut svc = TuningService::with_workers(spec.resolved_workers())
            .with_batch_size(spec.batch_size)
            .with_steal(spec.steal)
            .with_epoch_runs(spec.epoch_runs)
            .with_cache_budget(spec.cache_budget);
        if spec.is_bounded() {
            svc = svc.with_ingress(IngressConfig::bounded(
                spec.per_tenant_depth,
                spec.global_depth,
            ));
        }
        let mut tenant_ids = Vec::with_capacity(spec.tenants);
        for (t, prep) in prepared.iter().enumerate() {
            let options = if spec.shared_cache {
                let mut options = TenantOptions::default()
                    .with_cache_capacity(spec.cache_capacity)
                    .with_cache_policy(spec.cache_policy);
                if let Some(adaptive) = spec.adaptive_cache {
                    options = options.with_adaptive_cache(adaptive);
                }
                options
            } else {
                TenantOptions {
                    cache: None,
                    ..TenantOptions::default()
                }
            };
            let id = svc.add_tenant_with(
                format!("tenant-{t}"),
                prep.db.clone(),
                options.with_ibg_reuse(spec.ibg_reuse),
            );
            for session in &spec.sessions {
                svc.add_session(id, session.label(), |env| build_advisor(session, prep, env));
            }
            tenant_ids.push(id);
        }
        (svc, tenant_ids)
    };
    let (mut svc, tenant_ids) = assemble();

    // The global submission schedule: (tenant index, event kind) in the
    // exact order events are offered.  A survivor replay re-interleaves the
    // per-tenant streams round-robin; otherwise the schedule is the
    // historical order — position-major across tenants, mimicking
    // concurrent arrival, each scheduled vote immediately after its
    // tenant's triggering query.  With skew the hot tenant's stream is
    // longer: exhausted tenants simply drop out of the rotation.
    let mut schedule: Vec<(usize, ServiceEventKind)> = Vec::new();
    match replay {
        Some(trace) => {
            assert_eq!(
                trace.survivors.len(),
                spec.tenants,
                "survivor trace shape must match the spec's tenant count"
            );
            let rounds = trace.survivors.iter().map(|s| s.len()).max().unwrap_or(0);
            for round in 0..rounds {
                for (t, stream) in trace.survivors.iter().enumerate() {
                    if let Some(&kind) = stream.get(round) {
                        schedule.push((t, kind));
                    }
                }
            }
        }
        None if spec.hot_flip => {} // the hot-flip shape builds rows below
        None => {
            let max_per_tenant = prepared
                .iter()
                .map(|p| p.statements.len())
                .max()
                .unwrap_or(0);
            for pos in 0..max_per_tenant {
                for (t, prep) in prepared.iter().enumerate() {
                    if pos >= prep.statements.len() {
                        continue;
                    }
                    schedule.push((t, ServiceEventKind::Query(pos)));
                    if spec.feedback_every > 0 && (pos + 1) % spec.feedback_every == 0 {
                        schedule.push((t, ServiceEventKind::Vote));
                    }
                }
            }
        }
    }

    let make_event = |t: usize, kind: ServiceEventKind| -> Event {
        match kind {
            ServiceEventKind::Query(pos) => {
                Event::query(tenant_ids[t], Arc::new(prepared[t].statements[pos].clone()))
            }
            ServiceEventKind::Vote => {
                let candidates = &prepared[t].default_selection().candidates;
                let approve = candidates.first().map(|&c| IndexSet::single(c));
                let reject = candidates.last().filter(|_| candidates.len() > 1);
                Event::vote(
                    tenant_ids[t],
                    approve.unwrap_or_else(IndexSet::empty),
                    reject
                        .map(|&c| IndexSet::single(c))
                        .unwrap_or_else(IndexSet::empty),
                )
            }
        }
    };

    let mut survivors: Vec<Vec<ServiceEventKind>> = vec![Vec::new(); spec.tenants];
    let batch = if spec.is_bounded() {
        // Overload shape: offer `offered_multiplier ×` the admission
        // capacity between drain rounds through the non-blocking gate, so
        // offered load exceeds drain capacity and the gate must shed.  Each
        // tenant's pending queue is mirrored on this side of the gate: a
        // query is mirrored when `try_submit` accepts it, and a vote that
        // bumps the tenant's shed counter displaced the newest queued
        // query — so the surviving stream falls out of public counters,
        // with no extra ingress introspection.
        let base = if spec.per_tenant_depth > 0 {
            spec.per_tenant_depth
        } else {
            spec.global_depth.max(1)
        };
        let wave = (spec.offered_multiplier.max(1) * base * spec.tenants).max(1);
        let mut mirror: Vec<std::collections::VecDeque<ServiceEventKind>> =
            vec![std::collections::VecDeque::new(); spec.tenants];
        let mut batch = service::BatchReport::default();
        let mut drain_and_record =
            |svc: &mut TuningService,
             mirror: &mut Vec<std::collections::VecDeque<ServiceEventKind>>| {
                batch.absorb(svc.poll());
                for (t, pending) in mirror.iter_mut().enumerate() {
                    survivors[t].extend(pending.drain(..));
                }
            };
        for chunk in schedule.chunks(wave) {
            for &(t, kind) in chunk {
                match kind {
                    ServiceEventKind::Query(_) => {
                        if svc.try_submit(make_event(t, kind)).is_admitted() {
                            mirror[t].push_back(kind);
                        }
                    }
                    ServiceEventKind::Vote => {
                        let shed_before = svc.tenant_ingress_stats(tenant_ids[t]).shed;
                        let outcome = svc.try_submit(make_event(t, kind));
                        debug_assert!(outcome.is_admitted(), "votes are never rejected");
                        if svc.tenant_ingress_stats(tenant_ids[t]).shed > shed_before {
                            let victim = mirror[t]
                                .iter()
                                .rposition(|k| matches!(k, ServiceEventKind::Query(_)))
                                .expect("a shed bump means a query was displaced");
                            mirror[t].remove(victim);
                        }
                        mirror[t].push_back(kind);
                    }
                }
            }
            drain_and_record(&mut svc, &mut mirror);
        }
        batch.absorb(svc.process_pending());
        for (t, pending) in mirror.iter_mut().enumerate() {
            survivors[t].extend(pending.drain(..));
        }
        batch
    } else if spec.hot_flip {
        // Adversarial hot-flip shape: each row is submitted and drained by
        // exactly one poll round, so the drain-round controllers (capacity
        // adaptation, epoch re-planning) observe the hot spot migrating
        // from tenant 0 to the last tenant and the mid-run scan bursts as
        // they happen instead of one all-at-once drain.
        let mut batch = service::BatchReport::default();
        for row in hot_flip_rows(spec, &prepared) {
            for &(t, kind) in &row {
                svc.submit(make_event(t, kind));
                survivors[t].push(kind);
            }
            batch.absorb(svc.poll());
        }
        batch.absorb(svc.process_pending());
        batch
    } else if spec.persist {
        // Durable wave shape: every wave is submitted, drained by one poll
        // round (which appends one WAL record before the events execute),
        // and every PERSIST_SNAPSHOT_EVERY-th wave ends with a snapshot.
        // At `crash_at` the live service is dropped between rounds — a
        // clean kill — and a freshly assembled host recovers from disk; the
        // replayed rounds are not re-logged, so the WAL-round total (and
        // every other deterministic metric) is identical to an
        // uninterrupted run's.
        let dir = persist_scratch_dir(&spec.name);
        svc = svc
            .with_persistence(&dir)
            .expect("a fresh scratch directory always attaches");
        let mut batch = service::BatchReport::default();
        for (wave, chunk) in schedule.chunks(PERSIST_WAVE).enumerate() {
            if spec.crash_at == Some(wave) {
                drop(svc);
                let (fresh, fresh_ids) = assemble();
                assert_eq!(fresh_ids, tenant_ids, "tenant ids are deterministic");
                svc = fresh;
                let report = svc
                    .restore(&dir)
                    .expect("restore recovers a cleanly killed service");
                assert_eq!(report.torn_bytes_discarded, 0, "clean kills tear nothing");
                assert_eq!(report.wal_rounds, wave as u64);
            }
            for &(t, kind) in chunk {
                svc.submit(make_event(t, kind));
                survivors[t].push(kind);
            }
            batch.absorb(svc.poll());
            if (wave + 1) % PERSIST_SNAPSHOT_EVERY == 0 {
                svc.snapshot().expect("snapshot of a quiescent service");
            }
        }
        batch.absorb(svc.process_pending());
        assert!(
            svc.persist_fault().is_none(),
            "the WAL must stay healthy through the whole replay: {:?}",
            svc.persist_fault()
        );
        let _ = std::fs::remove_dir_all(&dir);
        batch
    } else {
        for &(t, kind) in &schedule {
            svc.submit(make_event(t, kind));
            survivors[t].push(kind);
        }
        let total_events = svc.pending() as u64;
        let batch = svc.process_pending();
        assert_eq!(batch.events, total_events);
        batch
    };
    let trace = ServiceTrace { survivors };

    // Overload accounting must reconcile exactly once the service is
    // quiescent: everything admitted was either drained or displaced, and
    // the sessions saw exactly the drained events.
    let istats = svc.ingress_stats();
    assert_eq!(istats.pending, 0, "drain loop left events pending");
    assert_eq!(
        istats.submitted,
        istats.drained + istats.shed,
        "admitted events must all drain or be displaced"
    );
    assert_eq!(
        batch.events, istats.drained,
        "sessions saw a drained event twice or not at all"
    );

    // Cells: one per (tenant × session), ratios against the tenant's OPT.
    // Checkpoints are shared across cells, so they stop at the shortest
    // surviving tenant stream; each cell's final `opt_ratio` still covers
    // its tenant's whole surviving stream.
    let processed: Vec<usize> = (0..spec.tenants).map(|t| trace.queries(t)).collect();
    let min_per_tenant = processed.iter().copied().min().unwrap_or(0);
    let checkpoints = crate::runner::checkpoint_positions(min_per_tenant);
    let mut cells = Vec::with_capacity(spec.tenants * spec.sessions.len());
    for (t, prep) in prepared.iter().enumerate() {
        for (s, session_spec) in spec.sessions.iter().enumerate() {
            let id = service::SessionId::new(tenant_ids[t], s);
            let stats = svc.session_stats(id);
            let series = svc.cost_series(id);
            let ratio_at = |n: usize| -> f64 {
                let alg = if n == 0 { 0.0 } else { series[n - 1] };
                if alg <= 0.0 {
                    1.0
                } else {
                    prep.opt.cumulative_at(n) / alg
                }
            };
            cells.push(CellReport {
                label: format!("t{t}/{}", session_spec.label()),
                advisor: svc.session_advisor_name(id),
                total_work: stats.total_work,
                query_cost: stats.query_cost,
                transition_cost: stats.transition_cost,
                transitions: stats.transitions as usize,
                opt_ratio: ratio_at(processed[t]),
                ratio_series: checkpoints.iter().map(|&n| (n, ratio_at(n))).collect(),
                whatif_calls: svc.session_whatif_requests(id),
                repartitions: 0,
                states_tracked: 0,
                monitored: prep.default_selection().candidates.len(),
                final_config_size: stats.configuration_size,
                regret: prep.opt.regret_of(series),
                safety_fallbacks: svc.session_safety_fallbacks(id),
                wall_time_ms: 0.0,
            });
        }
    }

    let query_events: u64 = processed.iter().map(|&n| n as u64).sum();
    let vote_events: u64 = (0..spec.tenants).map(|t| trace.votes(t) as u64).sum();
    let cache = svc.aggregate_cache_stats();
    let ibg = svc.aggregate_ibg_stats();
    let sched = svc.sched_stats();
    let tenant_percentile = |p: f64| -> Vec<u64> {
        tenant_ids
            .iter()
            .map(|&id| batch.tenant_latency_percentile_us(id, p))
            .collect()
    };
    let report = RunReport {
        scenario: spec.name.clone(),
        seed: spec.seed,
        statements: query_events as usize,
        candidates: prepared
            .iter()
            .map(|p| p.default_selection().candidates.len())
            .sum(),
        partition_parts: prepared
            .iter()
            .map(|p| p.default_selection().partition.len())
            .sum(),
        opt_total: prepared.iter().map(|p| p.opt.total).sum(),
        checkpoints,
        cells,
        service: Some(ServiceSummary {
            tenants: spec.tenants,
            sessions: svc.session_count(),
            query_events,
            vote_events,
            cache_requests: cache.requests,
            cache_hits: cache.cache_hits,
            cache_hit_rate: cache.hit_rate(),
            cache_evictions: cache.evictions,
            cache_entries: cache.entries,
            ibg_builds: ibg.builds,
            ibg_reuses: ibg.reuses,
            workers: spec.resolved_workers(),
            steal: spec.steal,
            session_runs: sched.session_runs,
            stolen_runs: sched.stolen_runs,
            max_queue_depth: sched.max_queue_depth,
            load_imbalance: sched.max_imbalance,
            per_tenant_depth: spec.per_tenant_depth,
            global_depth: spec.global_depth,
            offered_events: istats.submitted + istats.rejected,
            shed_events: istats.shed,
            deferred_events: istats.deferred,
            rejected_submits: istats.rejected,
            peak_pending: istats.peak_pending,
            persist: spec.persist,
            wal_rounds: svc.wal_rounds(),
            ghost_hits: cache.ghost_hits,
            capacity_final: svc.cache_capacity_total(),
            epochs: sched.epochs,
            replans: sched.replans,
            events_per_sec: batch.events_per_sec(),
            latency_p50_us: batch.p50_us(),
            latency_p99_us: batch.p99_us(),
            tenant_latency_p50_us: tenant_percentile(0.50),
            tenant_latency_p99_us: tenant_percentile(0.99),
        }),
    };
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> ServiceScenarioSpec {
        ServiceScenarioSpec::new(name, 2, 2).with_feedback_every(8)
    }

    #[test]
    fn service_scenario_produces_one_cell_per_tenant_session() {
        let spec = tiny("svc-tiny");
        let report = run_service_scenario(&spec);
        assert_eq!(report.cells.len(), 2 * 3);
        assert_eq!(report.statements, 2 * 16);
        let service = report.service.as_ref().expect("service block present");
        assert_eq!(service.tenants, 2);
        assert_eq!(service.sessions, 6);
        assert_eq!(service.query_events, 32);
        assert_eq!(service.vote_events, 2 * 2); // one vote per 8 statements
        assert!(service.cache_requests > 0);
        assert!(service.cache_hit_rate > 0.0 && service.cache_hit_rate < 1.0);
        // Per-tenant OPT lower-bounds every session of that tenant; the
        // summed opt_total lower-bounds the summed total work per fleet slot.
        for cell in &report.cells {
            assert!(
                cell.opt_ratio > 0.0 && cell.opt_ratio <= 1.0 + 1e-9,
                "{}",
                cell.label
            );
            assert!(
                (cell.query_cost + cell.transition_cost - cell.total_work).abs() < 1e-6,
                "{}",
                cell.label
            );
            assert_eq!(cell.ratio_series.len(), report.checkpoints.len());
        }
        // Deterministic rendering round-trips.
        let diffs = report.diff_against_golden(&report.to_json(), 1e-9).unwrap();
        assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn bounded_batched_reusing_runs_agree_with_default_costs() {
        // The hot-path knobs — bounded cache (forced below the working
        // set), query batching, IBG reuse — may only change *overhead*
        // metrics (hits, evictions, builds), never a cost or recommendation.
        let base = run_service_scenario(&tiny("svc-hotpath"));
        let tuned = run_service_scenario(
            &tiny("svc-hotpath")
                .with_cache_capacity(16)
                .with_batch_size(4)
                .with_ibg_reuse(true),
        );
        assert_eq!(base.cells.len(), tuned.cells.len());
        for (b, t) in base.cells.iter().zip(&tuned.cells) {
            assert_eq!(b.label, t.label);
            assert_eq!(
                b.total_work.to_bits(),
                t.total_work.to_bits(),
                "{}",
                b.label
            );
            assert_eq!(b.ratio_series, t.ratio_series, "{}", b.label);
        }
        let base_svc = base.service.as_ref().unwrap();
        let tuned_svc = tuned.service.as_ref().unwrap();
        assert_eq!(
            base_svc.cache_evictions, 0,
            "unbounded default never evicts"
        );
        assert_eq!(base_svc.ibg_builds + base_svc.ibg_reuses, 0);
        assert!(
            tuned_svc.cache_evictions > 0,
            "capacity 16 must be below the working set ({} entries unbounded)",
            base_svc.cache_entries
        );
        // Two tenants, each capped at 16 resident entries.
        assert!(tuned_svc.cache_entries <= 2 * 16);
        assert!(tuned_svc.ibg_reuses > 0, "fleet sessions must share graphs");
        // Determinism: the tuned configuration replays byte-identically.
        let rerun = run_service_scenario(
            &tiny("svc-hotpath")
                .with_cache_capacity(16)
                .with_batch_size(4)
                .with_ibg_reuse(true),
        );
        assert_eq!(tuned.to_json(), rerun.to_json());
    }

    #[test]
    fn bounded_overload_sheds_and_control_replay_is_bit_equal() {
        let spec = tiny("svc-overload")
            .with_ingress_depths(2, 6)
            .with_offered_multiplier(3);
        let (bounded, trace) = run_service_scenario_traced(&spec);
        let svc = bounded.service.as_ref().expect("service block present");
        assert_eq!(svc.per_tenant_depth, 2);
        assert_eq!(svc.global_depth, 6);
        assert!(
            svc.rejected_submits > 0,
            "offering 3× capacity through depth-2 queues must reject"
        );
        // Everything offered is accounted for exactly once.
        assert_eq!(
            svc.offered_events,
            svc.query_events + svc.vote_events + svc.shed_events + svc.rejected_submits
        );
        // Pending may exceed the budget only by over-budget deferred votes.
        assert!(svc.peak_pending <= 6 + svc.deferred_events);
        // The trace is what the report counted.
        let traced_queries: u64 = (0..2).map(|t| trace.queries(t) as u64).sum();
        let traced_votes: u64 = (0..2).map(|t| trace.votes(t) as u64).sum();
        assert_eq!(traced_queries, svc.query_events);
        assert_eq!(traced_votes, svc.vote_events);

        // Replaying only the survivors through an unbounded service must
        // reproduce every cost cell bit-for-bit: shedding happens strictly
        // at admission, so a shed event never existed for the sessions.
        let control = run_service_control(&spec, &trace);
        assert_eq!(control.scenario, "svc-overload-control");
        let csvc = control.service.as_ref().unwrap();
        assert_eq!(csvc.shed_events + csvc.rejected_submits, 0);
        assert_eq!(csvc.query_events, svc.query_events);
        assert_eq!(bounded.cells.len(), control.cells.len());
        for (b, c) in bounded.cells.iter().zip(&control.cells) {
            assert_eq!(b.label, c.label);
            assert_eq!(
                b.total_work.to_bits(),
                c.total_work.to_bits(),
                "{}",
                b.label
            );
            assert_eq!(b.ratio_series, c.ratio_series, "{}", b.label);
        }

        // And the bounded run itself replays byte-identically: the shed
        // choice is a pure function of submission order.
        let rerun = run_service_scenario(&spec);
        assert_eq!(bounded.to_json(), rerun.to_json());
    }

    #[test]
    fn persistent_replay_with_crash_matches_uninterrupted_run() {
        // The wave shape with persistence attached may only change overhead
        // counters relative to the plain in-memory replay — never a cost.
        let plain = run_service_scenario(&tiny("svc-persist"));
        let durable = run_service_scenario(&tiny("svc-persist").with_persist(true));
        assert_eq!(plain.cells.len(), durable.cells.len());
        for (p, d) in plain.cells.iter().zip(&durable.cells) {
            assert_eq!(p.label, d.label);
            assert_eq!(
                p.total_work.to_bits(),
                d.total_work.to_bits(),
                "{}",
                p.label
            );
            assert_eq!(p.ratio_series, d.ratio_series, "{}", p.label);
        }
        let summary = durable.service.as_ref().unwrap();
        assert!(summary.persist);
        let waves = (36usize).div_ceil(PERSIST_WAVE) as u64; // 32 queries + 4 votes
        assert_eq!(summary.wal_rounds, waves);
        assert!(!plain.service.as_ref().unwrap().persist);
        assert_eq!(plain.service.as_ref().unwrap().wal_rounds, 0);

        // Killing the service after wave 1 and restoring from disk renders
        // the *byte-identical* deterministic report.
        let crashed = run_service_scenario(&tiny("svc-persist").with_crash_at(1));
        assert_eq!(durable.to_json(), crashed.to_json());
    }

    #[test]
    fn hot_flip_adaptive_arm_agrees_on_costs_with_static_arm() {
        // The adversarial shape delivers every (tenant, position) exactly
        // once in both arms, and adaptation/epoch-replanning only move
        // overhead counters — so every cost cell is bit-equal between the
        // self-tuning arm and the static control arm.
        let base = ServiceScenarioSpec::new("svc-hotflip", 3, 2)
            .with_skew(4)
            .with_workers(2)
            .with_cache_capacity(8)
            .with_hot_flip(true);
        let adaptive = base
            .clone()
            .with_cache_policy(CachePolicy::Arc)
            .with_adaptive_cache(AdaptiveCacheConfig::default())
            .with_cache_budget(96)
            .with_epoch_runs(4);
        let static_arm = run_service_scenario(&base);
        let tuned = run_service_scenario(&adaptive);
        assert_eq!(static_arm.cells.len(), tuned.cells.len());
        for (s, a) in static_arm.cells.iter().zip(&tuned.cells) {
            assert_eq!(s.label, a.label);
            assert_eq!(
                s.total_work.to_bits(),
                a.total_work.to_bits(),
                "{}",
                s.label
            );
            assert_eq!(s.ratio_series, a.ratio_series, "{}", s.label);
        }
        // Both hot tenants carry the skew volume; total = (2·skew + cold).
        assert_eq!(
            static_arm.statements,
            (4 + 1 + 4) * base.statements_per_tenant()
        );
        let ssum = static_arm.service.as_ref().unwrap();
        let asum = tuned.service.as_ref().unwrap();
        assert_eq!(ssum.query_events, asum.query_events);
        assert_eq!(ssum.epochs + ssum.replans, 0, "static arm never re-plans");
        assert_eq!(ssum.capacity_final, 3 * 8, "static capacities stay put");
        assert!(asum.replans > 0, "epoch mode must re-plan mid-round");
        assert!(
            asum.capacity_final > ssum.capacity_final,
            "thrash at capacity 8 must grow the adaptive caches"
        );
        assert!(asum.capacity_final <= 96, "the global budget binds growth");
        // Self-tuning replays byte-identically.
        let rerun = run_service_scenario(&adaptive);
        assert_eq!(tuned.to_json(), rerun.to_json());
    }

    #[test]
    fn cached_and_uncached_runs_agree_on_costs() {
        let cached = run_service_scenario(&tiny("svc-cache"));
        let uncached = run_service_scenario(&tiny("svc-cache").with_shared_cache(false));
        assert_eq!(cached.cells.len(), uncached.cells.len());
        for (c, u) in cached.cells.iter().zip(&uncached.cells) {
            assert_eq!(c.label, u.label);
            assert_eq!(
                c.total_work.to_bits(),
                u.total_work.to_bits(),
                "{}",
                c.label
            );
            assert_eq!(c.ratio_series, u.ratio_series, "{}", c.label);
        }
        let service = uncached.service.as_ref().unwrap();
        assert_eq!(service.cache_requests, 0, "uncached arm bypasses the cache");
    }

    #[test]
    fn bandit_cached_and_uncached_runs_agree_on_costs_and_whatif_calls() {
        // The bandit charges its exploration through the same `TuningEnv`
        // what-if accounting as WFIT/BC: switching the shared cache off may
        // change nothing about any cost cell, regret, fallback counter or
        // per-session `whatif_calls` — only the cache counters move.
        let cached = run_service_scenario(&tiny("svc-bandit-cache").with_bandit(true));
        let uncached = run_service_scenario(
            &tiny("svc-bandit-cache")
                .with_bandit(true)
                .with_shared_cache(false),
        );
        assert!(
            cached.cells.iter().any(|c| c.advisor == "BANDIT"),
            "the fleet must field a bandit cell"
        );
        assert_eq!(cached.cells.len(), uncached.cells.len());
        for (c, u) in cached.cells.iter().zip(&uncached.cells) {
            assert_eq!(c.label, u.label);
            assert_eq!(
                c.total_work.to_bits(),
                u.total_work.to_bits(),
                "{}",
                c.label
            );
            assert_eq!(c.ratio_series, u.ratio_series, "{}", c.label);
            assert_eq!(c.regret.to_bits(), u.regret.to_bits(), "{}", c.label);
            assert_eq!(c.safety_fallbacks, u.safety_fallbacks, "{}", c.label);
            assert_eq!(
                c.whatif_calls, u.whatif_calls,
                "{}: what-if accounting must not depend on the cache",
                c.label
            );
        }
        let bandit = cached.cells.iter().find(|c| c.advisor == "BANDIT").unwrap();
        assert!(bandit.whatif_calls > 0, "exploration must be charged");
        let service = uncached.service.as_ref().unwrap();
        assert_eq!(service.cache_requests, 0, "uncached arm bypasses the cache");
    }
}
