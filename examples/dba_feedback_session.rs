//! A semi-automatic tuning session: the DBA inspects WFIT's recommendation,
//! creates one index manually (implicit positive feedback), vetoes another
//! (explicit negative feedback), and WFIT folds both into its next
//! recommendations — exactly the scenario sketched in the paper's
//! introduction.
//!
//! Run with `cargo run --example dba_feedback_session`.

use wfit::core::evaluator::{Evaluator, FeedbackStream, RunOptions};
use wfit::{IndexAdvisor, IndexSet, Wfit, WfitConfig};

fn main() {
    // Use the benchmark database so the example has realistic tables.
    let bench = wfit::benchmark(6);
    let db = &bench.db;

    let mut tuner = Wfit::new(db, WfitConfig::default());

    // Phase 1: analyze a TPC-H heavy prefix of the workload.
    let prefix: Vec<_> = bench.statements.iter().take(40).cloned().collect();
    for stmt in &prefix {
        tuner.analyze_query(stmt);
    }
    let first = tuner.recommend();
    println!(
        "WFIT recommends {} indices after 40 statements:",
        first.len()
    );
    for idx in first.iter() {
        println!("  {}", db.index_name(idx));
    }

    // Phase 2: the DBA reacts.
    //  - They create the first recommended index out-of-band  → implicit +vote.
    //  - They refuse the second one (say, it clashed with locking in the past)
    //    → explicit −vote.
    let mut it = first.iter();
    let accepted = it.next();
    let vetoed = it.next();
    if let (Some(acc), Some(veto)) = (accepted, vetoed) {
        println!();
        println!(
            "DBA creates {} and vetoes {}",
            db.index_name(acc),
            db.index_name(veto)
        );
        tuner.feedback(&IndexSet::single(acc), &IndexSet::single(veto));
        tuner.notify_materialized(IndexSet::single(acc));
        let after = tuner.recommend();
        assert!(after.contains(acc));
        assert!(!after.contains(veto));
        println!(
            "next recommendation honors both votes ({} indices)",
            after.len()
        );
    }

    // Phase 3: keep tuning; the workload may eventually override the votes.
    let rest: Vec<_> = bench.statements.iter().skip(40).cloned().collect();
    let evaluator = Evaluator::new(db);
    let result = evaluator.run(&mut tuner, &rest, &RunOptions::default());
    println!();
    println!(
        "after the full workload: total work {:.0}, final recommendation {} indices",
        result.total_work,
        tuner.recommend().len()
    );

    // A scheduled feedback stream can also be replayed by the evaluator — this
    // is how the paper's V_GOOD / V_BAD experiments are driven.
    let mut stream = FeedbackStream::empty();
    if let Some(acc) = accepted {
        stream.add(10, IndexSet::single(acc), IndexSet::empty());
    }
    let mut fresh = Wfit::new(db, WfitConfig::default());
    let replay = evaluator.run(
        &mut fresh,
        &bench.statements,
        &RunOptions {
            feedback: stream,
            ..RunOptions::default()
        },
    );
    println!(
        "replay with a scheduled +vote at statement 10: total work {:.0}",
        replay.total_work
    );
}
