//! The multi-tenant tuning service end to end: eight tenants, each an
//! independent benchmark workload stream, served concurrently by one
//! `TuningService` — a WFIT session and a BC session per tenant, both
//! answering what-if questions out of the tenant's shared cost cache.
//! The hot-path knobs are all on: each tenant's cache is capacity-bounded
//! (deterministic CLOCK eviction), built IBGs are shared across the
//! tenant's sessions, the drain coalesces queries into session-major
//! batches, and the work-stealing scheduler spreads a hot tenant's
//! session-runs across idle workers.
//!
//! The second act demonstrates **async ingestion**: a producer thread keeps
//! submitting events through a cloned `ServiceHandle` while the main thread
//! polls drain rounds — submission is never blocked by a running drain.
//!
//! The third act demonstrates **admission control**: a deliberately tiny
//! bounded ingress is flooded through `try_submit` until it sheds — memory
//! stays at the configured budget, queries are turned away with a named
//! reason, and the DBA's votes always cut the line.
//!
//! The fourth act demonstrates **durability**: a service with a snapshot +
//! event WAL attached is killed between two drain rounds — past its last
//! snapshot — and a freshly assembled host restores from disk to the exact
//! pre-crash state, then finishes the workload.
//!
//! The fifth act demonstrates **adaptive self-tuning**: deliberately
//! undersized tenant caches run the scan-resistant ARC policy, the
//! working-set controller grows them at drain-round boundaries from their
//! own eviction/ghost-hit ledgers (under a global budget), and the drain
//! re-plans at epoch boundaries so a hot tenant's session-runs stop
//! lumping onto one worker — all of it a pure function of event counts,
//! so the control loop replays bit-identically.
//!
//! Run with `cargo run --release --example tuning_service`.

use std::sync::Arc;

use wfit::core::candidates::offline_selection;
use wfit::core::IndexAdvisor;
use wfit::service::{Event, IngressConfig, SessionId, SubmitOutcome, TenantOptions, TuningService};
use wfit::workload::{Benchmark, BenchmarkSpec};
use wfit::{IndexSet, Wfit, WfitConfig};

const TENANTS: usize = 8;
const STATEMENTS_PER_PHASE: usize = 8;
/// Per-tenant cap on resident what-if plan costs.
const CACHE_CAPACITY: usize = 256;
/// Consecutive queries coalesced into one session-major batch.
const BATCH_SIZE: usize = 8;
/// Worker threads (pinned, not host-derived, so the work-stealing plan is
/// the same on every machine).
const WORKERS: usize = 4;

fn main() {
    // Generate eight independent tenant workloads (same benchmark shape,
    // decorrelated seeds) and mine each tenant's offline candidates.
    println!("preparing {TENANTS} tenant workloads…");
    let mut service = TuningService::with_workers(WORKERS)
        .with_batch_size(BATCH_SIZE)
        .with_steal(true);
    let mut streams = Vec::new();
    for t in 0..TENANTS {
        let bench = Benchmark::generate(BenchmarkSpec {
            statements_per_phase: STATEMENTS_PER_PHASE,
            seed: 0xBE7C_11AD ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            phases: wfit::workload::default_phases(),
        });
        let selection = offline_selection(&bench.db, &bench.statements, &WfitConfig::default());
        let Benchmark { db, statements, .. } = bench;
        let db = Arc::new(db);

        let tenant = service.add_tenant_with(
            format!("tenant-{t}"),
            db,
            TenantOptions::default()
                .with_cache_capacity(CACHE_CAPACITY)
                .with_ibg_reuse(true),
        );
        let partition = selection.partition.clone();
        service.add_session(tenant, "wfit", move |env| {
            Box::new(Wfit::with_fixed_partition(
                env,
                WfitConfig::default(),
                partition,
                IndexSet::empty(),
            )) as Box<dyn IndexAdvisor + Send>
        });
        let candidates = selection.candidates.clone();
        service.add_session(tenant, "bc", move |env| {
            Box::new(wfit::advisors::BruchoChaudhuriAdvisor::new(
                env,
                candidates,
                &IndexSet::empty(),
            )) as Box<dyn IndexAdvisor + Send>
        });
        streams.push((tenant, statements));
    }

    // Interleave all tenants' statements round-robin, the way a shared
    // ingestion endpoint would see them, then drain the queues: the service
    // shards by tenant and processes tenants in parallel.
    let per_tenant = streams[0].1.len();
    for pos in 0..per_tenant {
        for (tenant, statements) in &streams {
            service.submit(Event::query(*tenant, Arc::new(statements[pos].clone())));
        }
    }
    println!(
        "processing {} events across {} sessions…",
        service.pending(),
        service.session_count()
    );
    let batch = service.process_pending();

    // Act two — live submission during a drain.  A producer thread replays
    // tenant 0's stream again through a cloned handle while this thread
    // polls: every round snapshots whatever has arrived and the
    // work-stealing plan spreads tenant 0's backlog over idle workers.
    let (hot_tenant, replay) = (streams[0].0, streams[0].1.clone());
    let expected = replay.len() as u64;
    let handle = service.handle();
    let mut live = wfit::service::BatchReport::default();
    let mut live_rounds = 0u64;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for statement in replay {
                handle.submit(Event::query(hot_tenant, Arc::new(statement)));
            }
        });
        let mut processed = 0u64;
        while processed < expected {
            let round = service.poll();
            processed += round.events;
            if round.events == 0 {
                std::thread::yield_now();
            } else {
                live_rounds += 1;
            }
            live.absorb(round);
        }
    });
    println!(
        "live ingestion: {} events drained over {} poll rounds while the \
         producer was still submitting (hot-tenant p99 {}µs)",
        live.events,
        live_rounds,
        live.tenant_p99_us(hot_tenant),
    );
    let sched = service.sched_stats();
    println!(
        "scheduler: {} rounds, {} session-runs ({} stolen), max queue depth {}, \
         load imbalance {:.3}",
        sched.rounds,
        sched.session_runs,
        sched.stolen_runs,
        sched.max_queue_depth,
        sched.max_imbalance,
    );

    println!();
    println!(
        "processed {} events in {:.2}s — {:.0} events/sec, latency p50 {}µs / p99 {}µs",
        batch.events,
        batch.wall_seconds,
        batch.events_per_sec(),
        batch.p50_us(),
        batch.p99_us(),
    );
    let cache = service.aggregate_cache_stats();
    println!(
        "shared what-if caches: {} requests, {} optimizer runs, hit rate {:.3}",
        cache.requests,
        cache.optimizer_calls,
        cache.hit_rate()
    );
    println!(
        "cache bounding: {} entries resident (≤ {} per tenant), {} evicted",
        cache.entries, CACHE_CAPACITY, cache.evictions
    );
    let ibg = service.aggregate_ibg_stats();
    println!(
        "ibg stores: {} graphs built, {} reused across sessions (reuse rate {:.3})",
        ibg.builds,
        ibg.reuses,
        ibg.reuse_rate()
    );

    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>10}",
        "tenant", "WFIT totWork", "BC totWork", "Δ%", "rec size"
    );
    for (tenant, _) in &streams {
        let wfit_stats = service.session_stats(SessionId::new(*tenant, 0));
        let bc_stats = service.session_stats(SessionId::new(*tenant, 1));
        let delta = 100.0 * (bc_stats.total_work - wfit_stats.total_work) / bc_stats.total_work;
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>7.1}% {:>10}",
            service.tenant_name(*tenant),
            wfit_stats.total_work,
            bc_stats.total_work,
            delta,
            service.recommendation(SessionId::new(*tenant, 0)).len()
        );
    }

    // Act three — the admission gate under overload.  A deliberately tiny
    // bounded service: 8 pending events per tenant, 24 across the service.
    // Flooding it through `try_submit` overruns the gate by design: most
    // queries are turned away with a named reason, pending memory never
    // exceeds the budget, and the DBA's votes are admitted every time —
    // displacing the newest queued query when their shard is full.
    println!();
    println!("overload act: bounded ingress (depth 8/tenant, 24 global)…");
    let mut bounded = TuningService::with_workers(2)
        .with_batch_size(BATCH_SIZE)
        .with_ingress(IngressConfig::bounded(8, 24));
    let mut flood = Vec::new();
    for t in 0..2 {
        let bench = Benchmark::generate(BenchmarkSpec {
            statements_per_phase: STATEMENTS_PER_PHASE,
            seed: 0x0DD_10AD ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            phases: wfit::workload::default_phases(),
        });
        let Benchmark { db, statements, .. } = bench;
        let tenant = bounded.add_tenant_with(
            format!("bounded-{t}"),
            Arc::new(db),
            TenantOptions::default().with_cache_capacity(CACHE_CAPACITY),
        );
        bounded.add_session(tenant, "wfit", |env| {
            Box::new(Wfit::new(env, WfitConfig::default())) as Box<dyn IndexAdvisor + Send>
        });
        flood.push((tenant, statements));
    }
    let (mut accepted, mut rejected, mut deferred) = (0u64, 0u64, 0u64);
    for _wave in 0..6 {
        for (tenant, statements) in &flood {
            for statement in statements {
                match bounded.try_submit(Event::query(*tenant, Arc::new(statement.clone()))) {
                    SubmitOutcome::Accepted => accepted += 1,
                    SubmitOutcome::Rejected { .. } => rejected += 1,
                    SubmitOutcome::Deferred => deferred += 1,
                }
            }
            // The DBA's vote cuts the line: never rejected, never shed.
            let vote = Event::vote(*tenant, IndexSet::empty(), IndexSet::empty());
            assert!(bounded.try_submit(vote).is_admitted());
        }
        bounded.poll();
    }
    bounded.process_pending();
    let gate = bounded.ingress_stats();
    println!(
        "  query outcomes: {accepted} accepted, {rejected} rejected, {deferred} deferred \
         (shed rate {:.3})",
        (gate.shed + gate.rejected) as f64 / (gate.submitted + gate.rejected).max(1) as f64,
    );
    println!(
        "  gate ledger: {} submitted = {} drained + {} shed + {} pending; \
         {} votes deferred; peak pending {} (budget 24)",
        gate.submitted, gate.drained, gate.shed, gate.pending, gate.deferred, gate.peak_pending,
    );

    // Act four — durability.  Attach a snapshot + event WAL to the service:
    // every drain round is appended to the log *before* its events execute,
    // and `snapshot()` writes an atomically-renamed checkpoint.  Then kill
    // the service between two rounds — after the last snapshot, so a WAL
    // tail must be replayed — and recover on a freshly assembled host.
    println!();
    println!("durability act: snapshot + WAL, kill and restore…");
    let dir = std::env::temp_dir().join(format!("wfit-example-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let bench = Benchmark::generate(BenchmarkSpec {
        statements_per_phase: STATEMENTS_PER_PHASE,
        seed: 0xD0_5AFE,
        phases: wfit::workload::default_phases(),
    });
    let Benchmark { db, statements, .. } = bench;
    let db = Arc::new(db);
    // The restore contract: the host re-runs the *same* assembly (same
    // database instance or shape, same session builders, same order) and
    // the persistence layer replays the state into it.
    let assemble = || {
        let mut svc = TuningService::with_workers(2).with_batch_size(BATCH_SIZE);
        let tenant = svc.add_tenant("durable", db.clone());
        svc.add_session(tenant, "wfit", |env| {
            Box::new(Wfit::new(env, WfitConfig::default())) as Box<dyn IndexAdvisor + Send>
        });
        (svc, tenant)
    };

    let (svc, tenant) = assemble();
    let mut svc = svc.with_persistence(&dir).expect("attach persistence");
    let session = SessionId::new(tenant, 0);
    let (half, tail) = (statements.len() / 2, statements.len() * 3 / 4);
    for statement in &statements[..half] {
        svc.submit(Event::query(tenant, Arc::new(statement.clone())));
    }
    svc.poll(); // WAL round 1
    svc.snapshot().expect("checkpoint the quiescent service");
    for statement in &statements[half..tail] {
        svc.submit(Event::query(tenant, Arc::new(statement.clone())));
    }
    svc.poll(); // WAL round 2 — logged, but *not* snapshotted
    let pre_crash = svc.session_stats(session).total_work;
    println!(
        "  logged {} WAL rounds, snapshot at round 1 — killing the service \
         with totWork {pre_crash:.0}…",
        svc.wal_rounds(),
    );
    drop(svc); // the crash: queues were empty, the disk state is all that survives

    let (mut svc, _) = assemble();
    let report = svc.restore(&dir).expect("recover snapshot + WAL tail");
    let recovered = svc.session_stats(session).total_work;
    assert_eq!(pre_crash.to_bits(), recovered.to_bits());
    println!(
        "  restored {} rounds ({} events) from disk — totWork {recovered:.0}, \
         bit-identical to the pre-crash state",
        report.wal_rounds, report.events_replayed,
    );
    for statement in &statements[tail..] {
        svc.submit(Event::query(tenant, Arc::new(statement.clone())));
    }
    svc.poll(); // WAL round 3, appended past the replayed log
    svc.snapshot().expect("post-restore checkpoint");
    println!(
        "  finished the workload on the restored host: {} WAL rounds, \
         final recommendation {} indexes",
        svc.wal_rounds(),
        svc.recommendation(session).len(),
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Act five — adaptive self-tuning.  Three tenants behind deliberately
    // tiny ARC caches; tenant 0 is hot (4× the statements).  The working-set
    // controller resizes each cache at drain-round boundaries from its own
    // eviction/ghost-hit deltas, growth capped by a global budget, and the
    // epoch planner cuts each round into weight-balanced segments that
    // re-plan against the load each worker actually absorbed.
    println!();
    println!("adaptive act: ARC caches + working-set controller + epochs…");
    let mut adaptive = TuningService::with_workers(2)
        .with_batch_size(BATCH_SIZE)
        .with_epoch_runs(2)
        .with_cache_budget(512);
    let mut skewed = Vec::new();
    for t in 0..3 {
        let bench = Benchmark::generate(BenchmarkSpec {
            statements_per_phase: STATEMENTS_PER_PHASE,
            seed: 0xADA97 ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            phases: wfit::workload::default_phases(),
        });
        let Benchmark { db, statements, .. } = bench;
        let tenant = adaptive.add_tenant_with(
            format!("adaptive-{t}"),
            Arc::new(db),
            TenantOptions::default()
                .with_cache_capacity(8) // far below the working set
                .with_cache_policy(wfit::simdb::cache::CachePolicy::Arc)
                .with_adaptive_cache(wfit::service::AdaptiveCacheConfig::default()),
        );
        adaptive.add_session(tenant, "wfit", |env| {
            Box::new(Wfit::new(env, WfitConfig::default())) as Box<dyn IndexAdvisor + Send>
        });
        adaptive.add_session(tenant, "bc-like", |env| {
            Box::new(Wfit::new(env, WfitConfig::default())) as Box<dyn IndexAdvisor + Send>
        });
        skewed.push((tenant, statements));
    }
    let initial_capacity = adaptive.cache_capacity_total();
    // Replay in waves so the controller acts at several round boundaries;
    // the hot tenant submits its stream four times per wave.
    for wave in 0..4 {
        for (t, (tenant, statements)) in skewed.iter().enumerate() {
            let repeats = if t == 0 { 4 } else { 1 };
            for _ in 0..repeats {
                for statement in statements.iter().skip(wave * 2).take(2) {
                    adaptive.submit(Event::query(*tenant, Arc::new(statement.clone())));
                }
            }
        }
        adaptive.poll();
    }
    let cache = adaptive.aggregate_cache_stats();
    let sched = adaptive.sched_stats();
    println!(
        "  ARC ledger: {} requests, hit rate {:.3}, {} evictions, \
         {} ghost resurrections, {} T1→T2 promotions",
        cache.requests,
        cache.hit_rate(),
        cache.evictions,
        cache.ghost_hits,
        cache.policy_promotions,
    );
    println!(
        "  working-set controller: capacity {} → {} entries (budget 512)",
        initial_capacity,
        adaptive.cache_capacity_total(),
    );
    println!(
        "  epoch planner: {} epochs cut, {} re-plans over {} rounds, \
         load imbalance {:.3}",
        sched.epochs, sched.replans, sched.rounds, sched.max_imbalance,
    );
}
