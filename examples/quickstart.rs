//! Quickstart: point WFIT at a schema, stream a few statements through it and
//! read the recommendation.
//!
//! Run with `cargo run --example quickstart`.

use wfit::core::evaluator::{Evaluator, RunOptions};
use wfit::{Database, IndexAdvisor, IndexSet, Wfit, WfitConfig};

fn main() {
    // 1. Describe the schema (statistics only — no data is loaded).
    let mut builder = simdb::catalog::CatalogBuilder::new();
    builder
        .table("app.orders")
        .rows(2_000_000.0)
        .column("id", simdb::types::DataType::Integer, 2_000_000.0)
        .column("customer_id", simdb::types::DataType::Integer, 50_000.0)
        .column_with_range(
            "total",
            simdb::types::DataType::Decimal,
            500_000.0,
            1.0,
            10_000.0,
        )
        .column("status", simdb::types::DataType::Integer, 6.0)
        .finish();
    builder
        .table("app.customers")
        .rows(50_000.0)
        .column("customer_id", simdb::types::DataType::Integer, 50_000.0)
        .column("region", simdb::types::DataType::Integer, 12.0)
        .finish();
    let db = Database::new(builder.build());

    // 2. Create the semi-automatic tuner.
    let mut tuner = Wfit::new(&db, WfitConfig::default());

    // 3. Stream the workload through it (here: the same lookup repeated, plus
    //    a join and an update).
    let workload = [
        db.parse("SELECT total FROM app.orders WHERE customer_id = 4711")
            .unwrap(),
        db.parse("SELECT total FROM app.orders WHERE customer_id = 42")
            .unwrap(),
        db.parse(
            "SELECT count(*) FROM app.orders, app.customers \
             WHERE orders.customer_id = customers.customer_id AND region = 3 AND total > 9000",
        )
        .unwrap(),
        db.parse("UPDATE app.orders SET status = 2 WHERE total BETWEEN 100 AND 110")
            .unwrap(),
    ];
    let mut repeated = Vec::new();
    for _ in 0..5 {
        repeated.extend(workload.iter().cloned());
    }

    let evaluator = Evaluator::new(&db);
    let result = evaluator.run(&mut tuner, &repeated, &RunOptions::default());

    // 4. Inspect the recommendation.
    let recommendation = tuner.recommend();
    println!("analyzed {} statements", result.len());
    println!(
        "total work (optimizer cost units): {:.0}",
        result.total_work
    );
    println!("recommended indices:");
    for idx in recommendation.iter() {
        println!("  + {}", db.index_name(idx));
    }

    // Compare with doing nothing.
    let no_index_cost: f64 = repeated
        .iter()
        .map(|q| db.cost(q, &IndexSet::empty()))
        .sum();
    println!(
        "workload cost without any index: {:.0}  (WFIT saved {:.0}%)",
        no_index_cost,
        100.0 * (1.0 - result.total_work / no_index_cost)
    );
}
