//! Explore the what-if optimizer directly: parse a query, enumerate candidate
//! indexes, and print the estimated cost and chosen plan for a few
//! hypothetical configurations — including the index-interaction effect the
//! tuning algorithms rely on.
//!
//! Run with `cargo run --example whatif_explore`.

use wfit::IndexSet;

fn main() {
    let bench = wfit::benchmark(1);
    let db = &bench.db;

    let sql = "SELECT count(*) \
               FROM tpce.security table1, tpce.company table2, tpce.daily_market table0 \
               WHERE table1.s_pe BETWEEN 63.278 AND 86.091 \
               AND table1.s_exch_date BETWEEN '1995-05-12' AND '2006-07-10' \
               AND table2.co_open_date BETWEEN '1812-08-05' AND '1812-12-12' \
               AND table1.s_symb = table0.dm_s_symb \
               AND table2.co_id = table1.s_co_id";
    let stmt = db.parse(sql).expect("the paper's example query parses");
    println!("query: {sql}\n");

    let candidates = db.extract_candidates(&stmt);
    println!(
        "extractIndices(q) produced {} candidates:",
        candidates.len()
    );
    for &c in &candidates {
        println!(
            "  {} (create cost {:.0})",
            db.index_name(c),
            db.create_cost(c)
        );
    }

    println!();
    let empty = db.whatif_cost(&stmt, &IndexSet::empty());
    println!(
        "cost with no indexes:        {:>12.0}   [{}]",
        empty.total, empty.description
    );

    let all = IndexSet::from_iter(candidates.iter().copied());
    let full = db.whatif_cost(&stmt, &all);
    println!(
        "cost with all candidates:    {:>12.0}   [{}]",
        full.total, full.description
    );
    println!("indexes actually used:       {}", full.used_indexes.len());

    // Show an interaction: the benefit of one used index depends on another.
    let used: Vec<_> = full.used_indexes.iter().collect();
    if used.len() >= 2 {
        let (a, b) = (used[0], used[1]);
        let c_a = db.cost(&stmt, &IndexSet::single(a));
        let c_b = db.cost(&stmt, &IndexSet::single(b));
        let c_ab = db.cost(&stmt, &IndexSet::from_iter([a, b]));
        println!();
        println!("index interaction (degree of interaction basis):");
        println!(
            "  benefit({}) alone        = {:.0}",
            db.index_name(a),
            empty.total - c_a
        );
        println!(
            "  benefit({}) given {} = {:.0}",
            db.index_name(a),
            db.index_name(b),
            c_b - c_ab
        );
    }

    println!();
    println!("what-if optimizer usage: {:?}", db.whatif_stats());
}
