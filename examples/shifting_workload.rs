//! Online tuning under a shifting workload: run WFIT and the BC baseline over
//! the eight-phase benchmark and print a per-phase comparison against the
//! offline optimal schedule — a miniature of the paper's Figure 8/12 setup.
//!
//! Run with `cargo run --release --example shifting_workload`.

use advisors::{compute_optimal, BruchoChaudhuriAdvisor};
use wfit::core::candidates::offline_selection;
use wfit::core::evaluator::{Evaluator, RunOptions};
use wfit::{IndexSet, Wfit, WfitConfig};

fn main() {
    let bench = wfit::benchmark(25); // 8 phases × 25 statements
    let db = &bench.db;

    // Offline: mine the fixed candidate set + stable partition and compute OPT.
    let selection = offline_selection(db, &bench.statements, &WfitConfig::default());
    println!(
        "mined {} candidates out of a universe of {}, stable partition has {} parts",
        selection.candidates.len(),
        selection.universe.len(),
        selection.partition.len()
    );
    let opt = compute_optimal(
        db,
        &bench.statements,
        &selection.partition,
        &IndexSet::empty(),
    );

    // Online advisors.
    let evaluator = Evaluator::new(db);
    let mut wfit_auto = Wfit::new(db, WfitConfig::default());
    let auto = evaluator.run(&mut wfit_auto, &bench.statements, &RunOptions::default());
    let mut bc = BruchoChaudhuriAdvisor::new(db, selection.candidates.clone(), &IndexSet::empty());
    let bc_run = evaluator.run(&mut bc, &bench.statements, &RunOptions::default());

    // Per-phase report.
    println!();
    println!(
        "{:>6} {:>14} {:>14} {:>14}  (cumulative total work; lower is better)",
        "phase", "OPT", "WFIT", "BC"
    );
    let boundaries = bench.phase_boundaries();
    for (phase, _start) in boundaries.iter().enumerate() {
        let end = boundaries
            .get(phase + 1)
            .map(|b| b - 1)
            .unwrap_or(bench.len());
        println!(
            "{:>6} {:>14.0} {:>14.0} {:>14.0}",
            phase + 1,
            opt.cumulative_at(end),
            auto.cumulative_at(end),
            bc_run.cumulative_at(end)
        );
    }
    println!();
    println!(
        "final ratios (OPT=1): WFIT {:.3}, BC {:.3}",
        opt.total / auto.total_work,
        opt.total / bc_run.total_work
    );
    println!(
        "WFIT repartitioned {} times while following the phase shifts",
        wfit_auto.repartition_count()
    );
}
